#include "sunfloor/dist/protocol.h"

#include <exception>
#include <utility>

#include "sunfloor/cas/bincode.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/util/json.h"

namespace sunfloor::dist {

namespace {

using cas::Dec;
using cas::Enc;

// Payload tags: a request blob can never decode as a response.
constexpr std::uint8_t kTagRequest = 'Q';
constexpr std::uint8_t kTagResponse = 'S';

// --------------------------------------------------------------- spec

void enc_spec(Enc& e, const DesignSpec& s) {
    e.str(s.name);
    e.u32(static_cast<std::uint32_t>(s.cores.cores().size()));
    for (const Core& c : s.cores.cores()) {
        e.str(c.name);
        e.f64(c.width);
        e.f64(c.height);
        e.f64(c.position.x);
        e.f64(c.position.y);
        e.i32(c.layer);
    }
    e.u32(static_cast<std::uint32_t>(s.comm.flows().size()));
    for (const Flow& f : s.comm.flows()) {
        e.i32(f.src);
        e.i32(f.dst);
        e.f64(f.bw_mbps);
        e.f64(f.max_latency_cycles);
        e.u8(f.type == FlowType::Request ? 0 : 1);
    }
}

bool dec_spec(Dec& d, DesignSpec& s) {
    s.name = d.str();
    const std::uint32_t nc = d.u32();
    try {
        for (std::uint32_t i = 0; i < nc && d.ok(); ++i) {
            Core c;
            c.name = d.str();
            c.width = d.f64();
            c.height = d.f64();
            c.position.x = d.f64();
            c.position.y = d.f64();
            c.layer = d.i32();
            s.cores.add_core(std::move(c));
        }
        const std::uint32_t nf = d.u32();
        for (std::uint32_t i = 0; i < nf && d.ok(); ++i) {
            Flow f;
            f.src = d.i32();
            f.dst = d.i32();
            f.bw_mbps = d.f64();
            f.max_latency_cycles = d.f64();
            const std::uint8_t t = d.u8();
            if (t > 1) return false;
            f.type = t == 0 ? FlowType::Request : FlowType::Response;
            if (f.src >= s.cores.num_cores() || f.dst >= s.cores.num_cores())
                return false;
            s.comm.add_flow(f);
        }
    } catch (const std::exception&) {
        // add_core/add_flow validation (duplicate names, non-finite
        // geometry, src == dst) — malformed payload, not a crash.
        return false;
    }
    return d.ok();
}

// ------------------------------------------------------- config pieces

void enc_config(Enc& e, const SynthesisConfig& c) {
    e.f64(c.eval.freq_hz);
    const NocTechParams& lp = c.eval.lib.params();
    e.i32(lp.flit_width_bits);
    e.f64(lp.switch_t0_ns);
    e.f64(lp.switch_t1_ns_per_port);
    e.f64(lp.switch_e0_pj);
    e.f64(lp.switch_e1_pj_per_port);
    e.f64(lp.switch_idle_c0_mw);
    e.f64(lp.switch_idle_c1_mw_per_port);
    e.f64(lp.switch_area_a0_mm2);
    e.f64(lp.switch_area_a1_mm2);
    e.f64(lp.switch_area_a2_mm2);
    e.f64(lp.ni_area_mm2);
    e.f64(lp.ni_energy_pj);
    e.f64(lp.ni_idle_mw_per_ghz);
    const WireParams& wp = c.eval.wire.params();
    e.f64(wp.delay_ns_per_mm);
    e.f64(wp.energy_pj_per_flit_mm);
    e.f64(wp.idle_mw_per_mm_ghz);
    e.f64(wp.max_unrepeated_mm);
    const TsvParams& tp = c.eval.tsv.params();
    e.f64(tp.delay_ps);
    e.f64(tp.energy_pj_per_flit_layer);
    e.f64(tp.tsv_pitch_um);
    e.f64(tp.tsv_diameter_um);
    e.i32(tp.overhead_wires_per_link);
    e.i32(tp.redundant_tsvs_per_link);
    e.i32(c.max_ill);
    e.u8(c.allow_multilayer_links ? 1 : 0);
    e.f64(c.alpha);
    e.f64(c.theta_min);
    e.f64(c.theta_max);
    e.f64(c.theta_step);
    e.i32(c.soft_ill_margin);
    e.i32(c.soft_switch_margin);
    e.f64(c.soft_inf_factor);
    e.u8(c.use_soft_thresholds ? 1 : 0);
    e.f64(c.latency_weight);
    e.str(routing::routing_to_string(c.routing));
    e.f64(c.link_capacity_utilization);
    e.i32(c.partition.num_starts);
    e.u8(c.partition.refine ? 1 : 0);
    e.i32(c.partition.max_block_size);
    e.i32(c.partition.max_passes);
    e.u64(c.seed);
    e.u8(c.run_floorplan ? 1 : 0);
    e.i32(c.min_switches);
    e.i32(c.max_switches);
}

bool dec_config(Dec& d, SynthesisConfig& c) {
    c.eval.freq_hz = d.f64();
    NocTechParams lp;
    lp.flit_width_bits = d.i32();
    lp.switch_t0_ns = d.f64();
    lp.switch_t1_ns_per_port = d.f64();
    lp.switch_e0_pj = d.f64();
    lp.switch_e1_pj_per_port = d.f64();
    lp.switch_idle_c0_mw = d.f64();
    lp.switch_idle_c1_mw_per_port = d.f64();
    lp.switch_area_a0_mm2 = d.f64();
    lp.switch_area_a1_mm2 = d.f64();
    lp.switch_area_a2_mm2 = d.f64();
    lp.ni_area_mm2 = d.f64();
    lp.ni_energy_pj = d.f64();
    lp.ni_idle_mw_per_ghz = d.f64();
    c.eval.lib = NocLibrary(lp);
    WireParams wp;
    wp.delay_ns_per_mm = d.f64();
    wp.energy_pj_per_flit_mm = d.f64();
    wp.idle_mw_per_mm_ghz = d.f64();
    wp.max_unrepeated_mm = d.f64();
    c.eval.wire = WireModel(wp);
    TsvParams tp;
    tp.delay_ps = d.f64();
    tp.energy_pj_per_flit_layer = d.f64();
    tp.tsv_pitch_um = d.f64();
    tp.tsv_diameter_um = d.f64();
    tp.overhead_wires_per_link = d.i32();
    tp.redundant_tsvs_per_link = d.i32();
    c.eval.tsv = TsvModel(tp);
    c.max_ill = d.i32();
    c.allow_multilayer_links = d.u8() != 0;
    c.alpha = d.f64();
    c.theta_min = d.f64();
    c.theta_max = d.f64();
    c.theta_step = d.f64();
    c.soft_ill_margin = d.i32();
    c.soft_switch_margin = d.i32();
    c.soft_inf_factor = d.f64();
    c.use_soft_thresholds = d.u8() != 0;
    c.latency_weight = d.f64();
    if (!routing::routing_from_string(d.str(), c.routing)) return false;
    c.link_capacity_utilization = d.f64();
    c.partition.num_starts = d.i32();
    c.partition.refine = d.u8() != 0;
    c.partition.max_block_size = d.i32();
    c.partition.max_passes = d.i32();
    c.seed = d.u64();
    c.run_floorplan = d.u8() != 0;
    c.min_switches = d.i32();
    c.max_switches = d.i32();
    return d.ok();
}

void enc_explore_opts(Enc& e, const ExploreOptions& o) {
    e.i32(o.num_threads);
    e.u8(o.use_cache ? 1 : 0);
    e.u8(o.reuse_stages ? 1 : 0);
    e.u64(o.base_seed);
    e.str(backend_to_string(o.backend));
    const sim::InjectionParams& ip = o.sim.inject;
    e.str(sim::traffic_to_string(ip.traffic));
    e.f64(ip.injection_scale);
    e.i32(ip.packet_length_flits);
    e.f64(ip.burst_on_to_off);
    e.f64(ip.burst_off_to_on);
    e.f64(ip.hotspot_factor);
    e.i32(ip.hotspot_core);
    e.str(routing::routing_to_string(o.sim.routing));
    e.i32(o.sim.buffer_depth_flits);
    e.i64(o.sim.warmup_cycles);
    e.i64(o.sim.measure_cycles);
    e.i64(o.sim.drain_max_cycles);
    e.u64(o.sim.seed);
}

bool dec_explore_opts(Dec& d, ExploreOptions& o) {
    o.num_threads = d.i32();
    o.use_cache = d.u8() != 0;
    o.reuse_stages = d.u8() != 0;
    o.base_seed = d.u64();
    if (!backend_from_string(d.str(), o.backend)) return false;
    sim::InjectionParams& ip = o.sim.inject;
    if (!sim::traffic_from_string(d.str(), ip.traffic)) return false;
    ip.injection_scale = d.f64();
    ip.packet_length_flits = d.i32();
    ip.burst_on_to_off = d.f64();
    ip.burst_off_to_on = d.f64();
    ip.hotspot_factor = d.f64();
    ip.hotspot_core = d.i32();
    if (!routing::routing_from_string(d.str(), o.sim.routing)) return false;
    o.sim.buffer_depth_flits = d.i32();
    o.sim.warmup_cycles = d.i64();
    o.sim.measure_cycles = d.i64();
    o.sim.drain_max_cycles = d.i64();
    o.sim.seed = d.u64();
    return d.ok();
}

void enc_point(Enc& e, const GridPoint& p) {
    e.i32(p.index);
    e.f64(p.freq_hz);
    e.i32(p.max_tsvs);
    e.i32(p.link_width_bits);
    e.str(phase_to_string(p.phase));
    e.f64(p.theta);
    e.str(routing::routing_to_string(p.routing));
}

bool dec_point(Dec& d, GridPoint& p) {
    p.index = d.i32();
    p.freq_hz = d.f64();
    p.max_tsvs = d.i32();
    p.link_width_bits = d.i32();
    if (!phase_from_string(d.str(), p.phase)) return false;
    p.theta = d.f64();
    if (!routing::routing_from_string(d.str(), p.routing)) return false;
    return d.ok();
}

void enc_sim_report(Enc& e, const sim::SimReport& r) {
    e.i64(r.injected_packets);
    e.i64(r.received_packets);
    e.i64(r.injected_flits);
    e.i64(r.received_flits);
    e.f64(r.avg_latency_cycles);
    e.f64(r.p99_latency_cycles);
    e.f64(r.max_latency_cycles);
    e.f64(r.avg_head_latency_cycles);
    e.doubles(r.flow_avg_latency_cycles);
    e.f64(r.offered_flits_per_cycle);
    e.f64(r.accepted_flits_per_cycle);
    e.doubles(r.link_utilization);
    e.u8(r.drained ? 1 : 0);
    e.i64(r.cycles_run);
    e.i64(r.in_flight_flits_at_end);
}

sim::SimReport dec_sim_report(Dec& d) {
    sim::SimReport r;
    r.injected_packets = d.i64();
    r.received_packets = d.i64();
    r.injected_flits = d.i64();
    r.received_flits = d.i64();
    r.avg_latency_cycles = d.f64();
    r.p99_latency_cycles = d.f64();
    r.max_latency_cycles = d.f64();
    r.avg_head_latency_cycles = d.f64();
    r.flow_avg_latency_cycles = d.doubles();
    r.offered_flits_per_cycle = d.f64();
    r.accepted_flits_per_cycle = d.f64();
    r.link_utilization = d.doubles();
    r.drained = d.u8() != 0;
    r.cycles_run = d.i64();
    r.in_flight_flits_at_end = d.i64();
    return r;
}

void enc_counters(Enc& e, const pipeline::StageCounters& c) {
    e.i64(c.hits);
    e.i64(c.misses);
    e.f64(c.compute_ms);
}

pipeline::StageCounters dec_counters(Dec& d) {
    pipeline::StageCounters c;
    c.hits = d.i64();
    c.misses = d.i64();
    c.compute_ms = d.f64();
    return c;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

// ------------------------------------------------------- payload codec

std::string encode_shard_request(const ShardRequest& req) {
    Enc e;
    e.u32(kWireVersion);
    e.u8(kTagRequest);
    enc_spec(e, req.spec);
    enc_config(e, req.base_cfg);
    enc_explore_opts(e, req.opts);
    e.u32(static_cast<std::uint32_t>(req.points.size()));
    for (const GridPoint& p : req.points) enc_point(e, p);
    e.str(req.cas_dir);
    e.u64(req.cas_max_bytes);
    return e.take();
}

bool decode_shard_request(std::string_view payload, ShardRequest& out,
                          std::string& error) {
    Dec d(payload);
    if (d.u32() != kWireVersion || d.u8() != kTagRequest) {
        error = "shard request: bad version or tag";
        return false;
    }
    out.spec = DesignSpec{};
    if (!dec_spec(d, out.spec)) {
        error = "shard request: malformed spec";
        return false;
    }
    if (!dec_config(d, out.base_cfg) || !dec_explore_opts(d, out.opts)) {
        error = "shard request: malformed config";
        return false;
    }
    const std::uint32_t n = d.u32();
    out.points.clear();
    out.points.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        GridPoint p;
        if (!dec_point(d, p)) {
            error = "shard request: malformed grid point";
            return false;
        }
        out.points.push_back(p);
    }
    out.cas_dir = d.str();
    out.cas_max_bytes = d.u64();
    if (!d.done()) {
        error = "shard request: truncated or trailing bytes";
        return false;
    }
    return true;
}

std::string encode_shard_response(const ShardResponse& resp) {
    Enc e;
    e.u32(kWireVersion);
    e.u8(kTagResponse);
    e.u32(static_cast<std::uint32_t>(resp.points.size()));
    for (const ShardPointResult& pr : resp.points) {
        e.str(pr.phase_used);
        e.u32(static_cast<std::uint32_t>(pr.designs.size()));
        for (const std::string& blob : pr.designs) e.str(blob);
        e.u32(static_cast<std::uint32_t>(pr.sim_reports.size()));
        for (const sim::SimReport& r : pr.sim_reports) enc_sim_report(e, r);
    }
    e.u32(static_cast<std::uint32_t>(resp.pareto.size()));
    for (const ParetoEntry& pe : resp.pareto) {
        e.i32(pe.point_index);
        e.i32(pe.design_index);
    }
    enc_counters(e, resp.stage.partition);
    enc_counters(e, resp.stage.routing);
    enc_counters(e, resp.stage.placement);
    enc_counters(e, resp.stage.position_lp);
    enc_counters(e, resp.stage.evaluation);
    return e.take();
}

bool decode_shard_response(std::string_view payload, ShardResponse& out,
                           std::string& error) {
    Dec d(payload);
    if (d.u32() != kWireVersion || d.u8() != kTagResponse) {
        error = "shard response: bad version or tag";
        return false;
    }
    const std::uint32_t n = d.u32();
    out.points.clear();
    out.points.reserve(n);
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
        ShardPointResult pr;
        pr.phase_used = d.str();
        const std::uint32_t nd = d.u32();
        for (std::uint32_t k = 0; k < nd && d.ok(); ++k)
            pr.designs.push_back(d.str());
        const std::uint32_t ns = d.u32();
        for (std::uint32_t k = 0; k < ns && d.ok(); ++k)
            pr.sim_reports.push_back(dec_sim_report(d));
        out.points.push_back(std::move(pr));
    }
    const std::uint32_t np = d.u32();
    out.pareto.clear();
    for (std::uint32_t i = 0; i < np && d.ok(); ++i) {
        ParetoEntry pe;
        pe.point_index = d.i32();
        pe.design_index = d.i32();
        out.pareto.push_back(pe);
    }
    out.stage.partition = dec_counters(d);
    out.stage.routing = dec_counters(d);
    out.stage.placement = dec_counters(d);
    out.stage.position_lp = dec_counters(d);
    out.stage.evaluation = dec_counters(d);
    if (!d.done()) {
        error = "shard response: truncated or trailing bytes";
        return false;
    }
    return true;
}

std::string to_hex(std::string_view bytes) {
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xf]);
    }
    return out;
}

bool from_hex(std::string_view hex, std::string& bytes) {
    if (hex.size() % 2 != 0) return false;
    bytes.clear();
    bytes.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_value(hex[i]);
        const int lo = hex_value(hex[i + 1]);
        if (hi < 0 || lo < 0) return false;
        bytes.push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

// ------------------------------------------------------------- framing

std::string make_shard_run_frame(const ShardRequest& req) {
    return "{\"op\":\"shard_run\",\"payload\":\"" +
           to_hex(encode_shard_request(req)) + "\"}";
}

std::string make_ping_frame() { return "{\"op\":\"ping\"}"; }

std::string make_ok_frame(const ShardResponse& resp) {
    return "{\"ok\":true,\"payload\":\"" +
           to_hex(encode_shard_response(resp)) + "\"}";
}

std::string make_pong_frame() { return "{\"ok\":true}"; }

std::string make_error_frame(const std::string& msg) {
    return "{\"ok\":false,\"error\":" + json_quote(msg) + "}";
}

bool parse_worker_frame(const std::string& line, WorkerRequest& out,
                        std::string& error) {
    const JsonParseResult parsed = parse_json(line);
    if (!parsed.ok) {
        error = "malformed request frame: " + parsed.error;
        return false;
    }
    const JsonValue* op = parsed.value.find("op");
    if (op == nullptr || !op->is_string()) {
        error = "request frame has no op";
        return false;
    }
    if (op->as_string() == "ping") {
        out.op = WorkerRequest::Op::Ping;
        return true;
    }
    if (op->as_string() != "shard_run") {
        error = "unknown op \"" + op->as_string() + "\"";
        return false;
    }
    out.op = WorkerRequest::Op::ShardRun;
    const JsonValue* payload = parsed.value.find("payload");
    if (payload == nullptr || !payload->is_string()) {
        error = "shard_run frame has no payload";
        return false;
    }
    std::string bytes;
    if (!from_hex(payload->as_string(), bytes)) {
        error = "shard_run payload is not valid hex";
        return false;
    }
    return decode_shard_request(bytes, out.run, error);
}

bool parse_response_frame(const std::string& line, std::string& payload,
                          std::string& error) {
    payload.clear();
    const JsonParseResult parsed = parse_json(line);
    if (!parsed.ok) {
        error = "malformed response frame: " + parsed.error;
        return false;
    }
    const JsonValue* ok = parsed.value.find("ok");
    if (ok == nullptr || !ok->is_bool()) {
        error = "response frame has no ok field";
        return false;
    }
    if (!ok->as_bool()) {
        const JsonValue* err = parsed.value.find("error");
        error = err != nullptr && err->is_string() ? err->as_string()
                                                   : "unnamed worker error";
        return false;
    }
    const JsonValue* p = parsed.value.find("payload");
    if (p == nullptr) return true;  // ping response
    if (!p->is_string() || !from_hex(p->as_string(), payload)) {
        error = "response payload is not valid hex";
        return false;
    }
    return true;
}

}  // namespace sunfloor::dist
