// Shard execution: the one code path every transport funnels into.
//
// run_shard() is what a worker does with a decoded ShardRequest — rebuild
// the spec, open the shared CAS store when one is configured, run the
// explorer over the slice and render the complete results back into a
// ShardResponse. The in-process transport calls it directly (after a full
// encode/decode round trip, so both transports exercise identical codec
// paths); WorkerServer serves it over a socket with the service
// transport's line framing.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sunfloor/dist/protocol.h"
#include "sunfloor/service/transport.h"
#include "sunfloor/util/channel.h"

namespace sunfloor::dist {

/// Run one shard job. Throws std::runtime_error on an unusable request
/// (unparseable spec, unopenable CAS directory) — the serving layer turns
/// that into an {"ok":false} frame.
ShardResponse run_shard(const ShardRequest& req);

struct WorkerOptions {
    /// Listen address: unix socket path (contains '/') or host:port.
    std::string listen;
    /// Connection-handler threads (concurrent coordinators served).
    int conn_threads = 2;
    /// Request-frame size limit; shard payloads carry whole grids, so the
    /// default is generous. <= 0 means unlimited.
    long long max_frame_bytes = 256LL << 20;
};

/// A shard worker: accepts connections and serves shard_run/ping frames
/// until stopped. The accept loop mirrors service::Server (self-pipe
/// wake-up, bounded hand-off channel), minus the job engine — shard jobs
/// run synchronously on the connection's handler thread, which is the
/// back-pressure: a worker busy with a slice makes the coordinator's call
/// wait, it never queues slices invisibly.
class WorkerServer {
  public:
    explicit WorkerServer(WorkerOptions opts);
    ~WorkerServer();

    WorkerServer(const WorkerServer&) = delete;
    WorkerServer& operator=(const WorkerServer&) = delete;

    /// Bind, listen and spawn the accept/handler threads.
    bool start(std::string& error);

    /// The resolved listen address (valid after start()).
    const service::Address& address() const { return addr_; }

    /// Begin shutdown (idempotent, callable from any thread or a signal
    /// handler via shutdown_fd()).
    void request_shutdown();

    /// Write end of the shutdown self-pipe (async-signal-safe wake-up).
    int shutdown_fd() const { return shutdown_pipe_[1]; }

    /// Block until shutdown was requested and all threads joined.
    void wait();

  private:
    void accept_loop();
    void handler_loop();
    void serve_connection(int fd);

    WorkerOptions opts_;
    service::Address addr_;
    Channel<int> pending_;
    int listen_fd_ = -1;
    int shutdown_pipe_[2] = {-1, -1};
    std::atomic<bool> shutting_down_{false};
    std::thread accept_thread_;
    std::vector<std::thread> handlers_;
    bool started_ = false;
};

}  // namespace sunfloor::dist
