#include "sunfloor/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "sunfloor/util/strings.h"

namespace sunfloor::lint {

namespace {

constexpr const char* kRuleIds[] = {
    "nondet-pow",    "nondet-rand",          "nondet-time",
    "float-format",  "unordered-iter-export", "raw-mutex",
    "enum-name-coverage", "suppression-syntax",
};

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ------------------------------------------------------------- scanning
//
// One pass that strips comments and string/char literals (replaced by
// spaces, newlines preserved so offsets keep their line numbers) while
// collecting the string-literal bodies (for float-format) and the
// lint:allow suppressions (from the comments).

struct Suppression {
    int line = 0;  ///< line the lint:allow token is on
    std::string rule;
    bool has_reason = false;
};

struct Scan {
    std::string code;  ///< masked content, same length as the input
    std::vector<std::pair<int, std::string>> strings;  ///< (line, body)
    std::vector<Suppression> supps;
};

int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     pos);
    return static_cast<int>(it - line_starts.begin());
}

std::vector<std::size_t> find_line_starts(std::string_view s) {
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < s.size(); ++i)
        if (s[i] == '\n') starts.push_back(i + 1);
    return starts;
}

/// Pull every `lint:allow(<rule>) <reason>` out of one comment whose
/// text starts at `pos` in the original content.
void parse_suppressions(std::string_view comment, std::size_t pos,
                        const std::vector<std::size_t>& line_starts,
                        std::vector<Suppression>& out) {
    static constexpr std::string_view kTag = "lint:allow(";
    std::size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string_view::npos) {
        const std::size_t rule_begin = at + kTag.size();
        const std::size_t close = comment.find(')', rule_begin);
        if (close == std::string_view::npos) break;
        Suppression s;
        s.line = line_of(line_starts, pos + at);
        s.rule = std::string(trim(comment.substr(rule_begin,
                                                 close - rule_begin)));
        // The reason runs to the end of the comment line.
        std::size_t reason_end = comment.find('\n', close);
        if (reason_end == std::string_view::npos)
            reason_end = comment.size();
        std::string_view reason =
            trim(comment.substr(close + 1, reason_end - close - 1));
        while (!reason.empty() && (reason.back() == '/' ||
                                   reason.back() == '*'))
            reason = trim(reason.substr(0, reason.size() - 1));
        s.has_reason = !reason.empty();
        out.push_back(std::move(s));
        at = close;
    }
}

Scan scan_source(std::string_view src,
                 const std::vector<std::size_t>& line_starts) {
    Scan sc;
    sc.code.assign(src.begin(), src.end());
    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < sc.code.size(); ++k)
            if (sc.code[k] != '\n') sc.code[k] = ' ';
    };
    std::size_t i = 0;
    const std::size_t n = src.size();
    while (i < n) {
        const char c = src[i];
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string_view::npos) end = n;
            parse_suppressions(src.substr(i, end - i), i, line_starts,
                               sc.supps);
            blank(i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            end = end == std::string_view::npos ? n : end + 2;
            parse_suppressions(src.substr(i, end - i), i, line_starts,
                               sc.supps);
            blank(i, end);
            i = end;
        } else if (c == '"' &&
                   (i == 0 || src[i - 1] != 'R')) {  // ordinary string
            const int line = line_of(line_starts, i);
            std::size_t j = i + 1;
            while (j < n && src[j] != '"') {
                if (src[j] == '\\' && j + 1 < n) ++j;
                if (src[j] == '\n') break;  // unterminated; bail at EOL
                ++j;
            }
            sc.strings.emplace_back(line,
                                    std::string(src.substr(i + 1, j - i - 1)));
            blank(i, std::min(j + 1, n));
            i = std::min(j + 1, n);
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {  // raw string
            const int line = line_of(line_starts, i);
            std::size_t p = i + 2;
            while (p < n && src[p] != '(') ++p;
            std::string delim(")");
            delim.append(src.substr(i + 2, p - i - 2));
            delim += '"';
            std::size_t end = src.find(delim, p);
            const std::size_t body_end =
                end == std::string_view::npos ? n : end;
            sc.strings.emplace_back(
                line, std::string(src.substr(p + 1, body_end - p - 1)));
            end = end == std::string_view::npos ? n : end + delim.size();
            blank(i, end);
            i = end;
        } else if (c == '\'') {  // char literal
            std::size_t j = i + 1;
            while (j < n && src[j] != '\'') {
                if (src[j] == '\\' && j + 1 < n) ++j;
                if (src[j] == '\n') break;
                ++j;
            }
            blank(i, std::min(j + 1, n));
            i = std::min(j + 1, n);
        } else {
            ++i;
        }
    }
    return sc;
}

// ------------------------------------------------------- token utilities

/// True when code[pos..pos+t.size()) is `t` as a whole identifier.
bool whole_word_at(std::string_view code, std::size_t pos,
                   std::string_view t) {
    if (pos > 0 && ident_char(code[pos - 1])) return false;
    const std::size_t end = pos + t.size();
    if (end < code.size() && ident_char(code[end])) return false;
    return true;
}

/// All positions where `t` occurs as a whole identifier.
std::vector<std::size_t> find_words(std::string_view code,
                                    std::string_view t) {
    std::vector<std::size_t> out;
    std::size_t at = 0;
    while ((at = code.find(t, at)) != std::string_view::npos) {
        if (whole_word_at(code, at, t)) out.push_back(at);
        at += t.size();
    }
    return out;
}

std::size_t skip_ws(std::string_view code, std::size_t i) {
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])))
        ++i;
    return i;
}

/// The identifier starting at `i` (empty if none).
std::string_view ident_at(std::string_view code, std::size_t i) {
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    return code.substr(i, j - i);
}

/// With code[open] == the opener, the index one past its matching
/// closer (angle brackets, parens or braces), or npos.
std::size_t match_nested(std::string_view code, std::size_t open,
                         char oc, char cc) {
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == oc) ++depth;
        if (code[i] == cc && --depth == 0) return i + 1;
    }
    return std::string_view::npos;
}

/// '/'-separated path components.
std::vector<std::string_view> components(std::string_view path) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (i > start) out.push_back(path.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool has_component(std::string_view path, std::string_view comp) {
    for (const auto& c : components(path))
        if (c == comp) return true;
    return false;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

// ------------------------------------------------------------ the rules

struct FileScan {
    const SourceFile* file;
    std::vector<std::size_t> line_starts;
    Scan scan;
};

void add(std::vector<Finding>& out, const FileScan& fs, std::size_t pos,
         const char* rule, std::string message) {
    out.push_back({fs.file->path, line_of(fs.line_starts, pos), rule,
                   std::move(message)});
}

void rule_nondet_pow(const FileScan& fs, std::vector<Finding>& out) {
    for (const char* t : {"pow", "powf", "powl"}) {
        for (std::size_t p : find_words(fs.scan.code, t)) {
            const std::size_t after =
                skip_ws(fs.scan.code, p + std::string_view(t).size());
            if (after < fs.scan.code.size() && fs.scan.code[after] == '(')
                add(out, fs, p, "nondet-pow",
                    format("banned %s(): last-ulp rounding varies across "
                           "libms; use det_pow16 or integer/sqrt math",
                           t));
        }
    }
}

void rule_nondet_rand(const FileScan& fs, std::vector<Finding>& out) {
    for (const char* t : {"rand", "srand"}) {
        for (std::size_t p : find_words(fs.scan.code, t)) {
            const std::size_t after =
                skip_ws(fs.scan.code, p + std::string_view(t).size());
            if (after < fs.scan.code.size() && fs.scan.code[after] == '(')
                add(out, fs, p, "nondet-rand",
                    format("banned %s(): all randomness must come from "
                           "the portable seeded xoshiro Rng",
                           t));
        }
    }
    for (std::size_t p : find_words(fs.scan.code, "random_device"))
        add(out, fs, p, "nondet-rand",
            "banned std::random_device: all randomness must come from "
            "the portable seeded xoshiro Rng");
}

void rule_nondet_time(const FileScan& fs, std::vector<Finding>& out) {
    // Wall-clock is fine in the observability layer and in benches —
    // nothing keyed or exported flows from them.
    if (has_component(fs.file->path, "obs") ||
        has_component(fs.file->path, "bench"))
        return;
    for (std::size_t p : find_words(fs.scan.code, "system_clock"))
        add(out, fs, p, "nondet-time",
            "banned std::chrono::system_clock outside obs/bench: "
            "wall-clock in a keyed or exported path breaks "
            "reproducibility (steady_clock durations are fine)");
    for (std::size_t p : find_words(fs.scan.code, "time")) {
        std::size_t i = skip_ws(fs.scan.code, p + 4);
        if (i >= fs.scan.code.size() || fs.scan.code[i] != '(') continue;
        i = skip_ws(fs.scan.code, i + 1);
        const std::string_view arg = ident_at(fs.scan.code, i);
        if (arg != "nullptr" && arg != "NULL") continue;
        if (skip_ws(fs.scan.code, i + arg.size()) < fs.scan.code.size() &&
            fs.scan.code[skip_ws(fs.scan.code, i + arg.size())] == ')')
            add(out, fs, p, "nondet-time",
                "banned time(nullptr) outside obs/bench: wall-clock in a "
                "keyed or exported path breaks reproducibility");
    }
}

void rule_raw_mutex(const FileScan& fs, std::vector<Finding>& out) {
    // util/ is where the annotated shim itself lives.
    if (has_component(fs.file->path, "util")) return;
    static constexpr const char* kBanned[] = {
        "mutex",         "timed_mutex",    "recursive_mutex",
        "shared_mutex",  "recursive_timed_mutex",
        "lock_guard",    "unique_lock",    "scoped_lock",
        "shared_lock",   "condition_variable",
        "condition_variable_any",
    };
    for (std::size_t p : find_words(fs.scan.code, "std")) {
        std::size_t i = skip_ws(fs.scan.code, p + 3);
        if (fs.scan.code.compare(i, 2, "::") != 0) continue;
        i = skip_ws(fs.scan.code, i + 2);
        const std::string_view id = ident_at(fs.scan.code, i);
        for (const char* b : kBanned) {
            if (id == b) {
                add(out, fs, p, "raw-mutex",
                    format("raw std::%s outside util/: use the annotated "
                           "util::Mutex/MutexLock/UniqueLock/CondVar shim "
                           "(util/mutex.h) so -Werror=thread-safety can "
                           "check the lock discipline",
                           b));
                break;
            }
        }
    }
}

bool float_pinned_path(std::string_view path) {
    return has_component(path, "spec") || has_component(path, "specgen") ||
           has_component(path, "cas") || ends_with(path, "obs/metrics.cpp") ||
           ends_with(path, "service/protocol.cpp");
}

void rule_float_format(const FileScan& fs, std::vector<Finding>& out) {
    if (!float_pinned_path(fs.file->path)) return;
    for (const auto& [line, body] : fs.scan.strings) {
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (body[i] != '%') continue;
            if (i + 1 < body.size() && body[i + 1] == '%') {
                ++i;
                continue;
            }
            std::size_t j = i + 1;
            while (j < body.size() &&
                   (std::strchr("-+ #0123456789.*", body[j]) != nullptr ||
                    body[j] == 'l' || body[j] == 'h' || body[j] == 'L' ||
                    body[j] == 'z' || body[j] == 'j' || body[j] == 't'))
                ++j;
            if (j >= body.size()) break;
            const char conv = body[j];
            if (std::strchr("fFeEgGaA", conv) != nullptr) {
                const std::string spec = body.substr(i, j - i + 1);
                if (spec != "%.6g" && spec != "%.17g")
                    out.push_back(
                        {fs.file->path, line, "float-format",
                         format("float format \"%s\" in a pinned-format "
                                "path: only %%.6g (spec writer) and %%.17g "
                                "(metrics/protocol) render doubles here",
                                spec.c_str())});
            }
            i = j;
        }
    }
}

void rule_unordered_iter(const FileScan& fs, std::vector<Finding>& out) {
    const std::string_view code = fs.scan.code;
    // A file "writes exports" when it declares a writer-shaped function.
    bool writer = false;
    for (std::size_t i = 0; i < code.size() && !writer; ++i) {
        if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1])))
            continue;
        const std::string_view id = ident_at(code, i);
        if (id.find("write") != std::string_view::npos ||
            id.find("export") != std::string_view::npos ||
            id == "to_json" || id == "to_csv")
            writer = true;
        i += id.size();
    }
    if (!writer) return;

    // Names of declared std::unordered_{map,set} variables.
    std::set<std::string, std::less<>> unordered_vars;
    for (const char* t : {"unordered_map", "unordered_set"}) {
        for (std::size_t p : find_words(code, t)) {
            std::size_t i = skip_ws(code, p + std::string_view(t).size());
            if (i >= code.size() || code[i] != '<') continue;
            i = match_nested(code, i, '<', '>');
            if (i == std::string_view::npos) continue;
            i = skip_ws(code, i);
            while (i < code.size() && (code[i] == '&' || code[i] == '*'))
                i = skip_ws(code, i + 1);
            const std::string_view name = ident_at(code, i);
            if (!name.empty() && name != "const")
                unordered_vars.insert(std::string(name));
        }
    }

    // Range-for whose range expression names one of them (or an
    // unordered type directly).
    for (std::size_t p : find_words(code, "for")) {
        std::size_t open = skip_ws(code, p + 3);
        if (open >= code.size() || code[open] != '(') continue;
        const std::size_t close = match_nested(code, open, '(', ')');
        if (close == std::string_view::npos) continue;
        const std::string_view inside =
            code.substr(open + 1, close - open - 2);
        // Find the range-for ':' (skip '::').
        std::size_t colon = std::string_view::npos;
        for (std::size_t k = 0; k < inside.size(); ++k) {
            if (inside[k] != ':') continue;
            if (k + 1 < inside.size() && inside[k + 1] == ':') {
                ++k;
                continue;
            }
            if (k > 0 && inside[k - 1] == ':') continue;
            colon = k;
            break;
        }
        if (colon == std::string_view::npos) continue;
        const std::string_view range = inside.substr(colon + 1);
        bool hit = range.find("unordered_map") != std::string_view::npos ||
                   range.find("unordered_set") != std::string_view::npos;
        std::string which(hit ? "an unordered container" : "");
        for (const auto& v : unordered_vars) {
            std::size_t at = 0;
            while (!hit &&
                   (at = range.find(v, at)) != std::string_view::npos) {
                if (whole_word_at(range, at, v)) {
                    hit = true;
                    which = "\"" + v + "\"";
                }
                at += v.size();
            }
        }
        if (hit)
            add(out, fs, p, "unordered-iter-export",
                format("iteration over %s in a file that writes exports: "
                       "unordered iteration order is implementation-"
                       "defined; iterate a sorted copy or a std::map",
                       which.c_str()));
    }
}

// enum-name-coverage needs the whole file set: enum definitions usually
// live in headers while the EnumName tables live in .cpp files.

struct EnumDef {
    std::string name;  ///< last name component only
    std::set<std::string> enumerators;
};

void collect_enum_defs(const FileScan& fs, std::vector<EnumDef>& defs) {
    const std::string_view code = fs.scan.code;
    for (std::size_t p : find_words(code, "enum")) {
        std::size_t i = skip_ws(code, p + 4);
        std::string_view id = ident_at(code, i);
        if (id == "class" || id == "struct") {
            i = skip_ws(code, i + id.size());
            id = ident_at(code, i);
        }
        if (id.empty()) continue;  // anonymous
        i += id.size();
        // Skip an optional underlying type up to '{' (a ';' first means
        // a forward declaration — nothing to collect).
        while (i < code.size() && code[i] != '{' && code[i] != ';') ++i;
        if (i >= code.size() || code[i] != '{') continue;
        const std::size_t close = match_nested(code, i, '{', '}');
        if (close == std::string_view::npos) continue;
        EnumDef def;
        def.name = std::string(id);
        std::string_view body = code.substr(i + 1, close - i - 2);
        std::size_t start = 0;
        for (std::size_t k = 0; k <= body.size(); ++k) {
            if (k == body.size() || body[k] == ',') {
                const std::string_view item =
                    trim(body.substr(start, k - start));
                const std::string_view e = ident_at(item, 0);
                if (!e.empty()) def.enumerators.insert(std::string(e));
                start = k + 1;
            }
        }
        if (!def.enumerators.empty()) defs.push_back(std::move(def));
    }
}

void rule_enum_coverage(const std::vector<FileScan>& scans,
                        std::vector<Finding>& out) {
    std::vector<EnumDef> defs;
    for (const auto& fs : scans) collect_enum_defs(fs, defs);

    for (const auto& fs : scans) {
        const std::string_view code = fs.scan.code;
        for (std::size_t p : find_words(code, "EnumName")) {
            std::size_t i = skip_ws(code, p + 8);
            if (i >= code.size() || code[i] != '<') continue;
            const std::size_t tend = match_nested(code, i, '<', '>');
            if (tend == std::string_view::npos) continue;
            std::string type(trim(code.substr(i + 1, tend - i - 2)));
            const std::size_t sep = type.rfind("::");
            const std::string ename =
                sep == std::string::npos ? type : type.substr(sep + 2);
            // The table initializer: the next { ... } after the
            // declarator. A following ';' or '(' first means this is
            // just a type mention (e.g. a span parameter), not a table.
            std::size_t b = tend;
            while (b < code.size() && code[b] != '{' && code[b] != ';' &&
                   code[b] != '(')
                ++b;
            if (b >= code.size() || code[b] != '{') continue;
            const std::size_t bend = match_nested(code, b, '{', '}');
            if (bend == std::string_view::npos) continue;
            const std::string_view body = code.substr(b, bend - b);
            std::set<std::string, std::less<>> listed;
            std::size_t at = 0;
            while ((at = body.find("::", at)) != std::string_view::npos) {
                const std::string_view e = ident_at(body, at + 2);
                if (!e.empty()) listed.insert(std::string(e));
                at += 2;
            }
            // Candidate enum definitions of that name (nested enums in
            // different classes can share a last component): report
            // against the best-covered candidate so an unrelated
            // same-name enum cannot cause false alarms.
            const EnumDef* best = nullptr;
            std::vector<std::string> best_missing;
            for (const auto& def : defs) {
                if (def.name != ename) continue;
                std::vector<std::string> missing;
                for (const auto& e : def.enumerators)
                    if (listed.find(e) == listed.end())
                        missing.push_back(e);
                if (!best || missing.size() < best_missing.size()) {
                    best = &def;
                    best_missing = std::move(missing);
                }
            }
            if (best && !best_missing.empty()) {
                std::string names;
                for (const auto& m : best_missing)
                    names += (names.empty() ? "" : ", ") + m;
                add(out, fs, p, "enum-name-coverage",
                    format("EnumName<%s> table is missing enumerator(s) "
                           "%s: the enum and its wire spellings have "
                           "drifted apart",
                           type.c_str(), names.c_str()));
            }
        }
    }
}

}  // namespace

std::span<const char* const> rule_ids() { return kRuleIds; }

std::vector<Finding> run_lint(const std::vector<SourceFile>& files) {
    std::vector<FileScan> scans;
    scans.reserve(files.size());
    for (const auto& f : files) {
        FileScan fs;
        fs.file = &f;
        fs.line_starts = find_line_starts(f.content);
        fs.scan = scan_source(f.content, fs.line_starts);
        scans.push_back(std::move(fs));
    }

    std::vector<Finding> out;
    for (const auto& fs : scans) {
        rule_nondet_pow(fs, out);
        rule_nondet_rand(fs, out);
        rule_nondet_time(fs, out);
        rule_raw_mutex(fs, out);
        rule_float_format(fs, out);
        rule_unordered_iter(fs, out);
        // Every suppression must say why.
        for (const auto& s : fs.scan.supps)
            if (!s.has_reason)
                out.push_back(
                    {fs.file->path, s.line, "suppression-syntax",
                     format("lint:allow(%s) without a reason: every "
                            "suppression must explain itself",
                            s.rule.c_str())});
    }
    rule_enum_coverage(scans, out);

    // Apply suppressions: a reasoned lint:allow on the finding's line or
    // on the line directly above it.
    std::vector<Finding> kept;
    for (auto& f : out) {
        bool suppressed = false;
        if (f.rule != std::string_view("suppression-syntax")) {
            for (const auto& fs : scans) {
                if (fs.file->path != f.path) continue;
                for (const auto& s : fs.scan.supps)
                    if (s.has_reason && s.rule == f.rule &&
                        (s.line == f.line || s.line == f.line - 1))
                        suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(std::move(f));
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.path != b.path) return a.path < b.path;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

void write_text(std::ostream& os, const std::vector<Finding>& findings) {
    for (const auto& f : findings)
        os << f.path << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
}

namespace {

std::string json_escape(std::string_view s) {
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += format("\\u%04x", c);
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
    std::ostringstream os;
    os << "{\n  \"schema_version\": 1,\n  \"count\": " << findings.size()
       << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        os << (i ? ",\n" : "\n") << "    {\"file\": " << json_escape(f.path)
           << ", \"line\": " << f.line
           << ", \"rule\": " << json_escape(f.rule)
           << ", \"message\": " << json_escape(f.message) << "}";
    }
    os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

}  // namespace sunfloor::lint
