// sunfloor_lint: project-invariant checker for the source tree.
//
// The determinism and concurrency rules PRs 5-9 established by hand are
// machine-checked here: the engine scans C++ sources (comments and
// string literals masked out first, so prose never trips a rule) for
// the project's banned constructs and reports file:line diagnostics.
// The CLI wrapper (tools/sunfloor_lint.cpp) walks directories and is
// run over `src/ tools/ tests/` by the static-analysis CI job with
// --error-on-findings; tests/lint_test.cpp pins every rule on
// purpose-built fixtures.
//
// Rules (ids are what suppressions name):
//
//   nondet-pow       std::pow/powf/powl anywhere: last-ulp rounding
//                    varies across libms, breaking bit-identity. Use
//                    det_pow16 (specgen) or integer/sqrt math.
//   nondet-rand      rand()/srand()/std::random_device anywhere: all
//                    randomness must come from the portable seeded
//                    xoshiro Rng.
//   nondet-time      time(nullptr)/std::chrono::system_clock outside
//                    obs/ and bench/ paths: wall-clock in a keyed or
//                    exported path breaks reproducibility.
//                    (steady_clock durations are fine and unflagged.)
//   unordered-iter-export
//                    range-for over a std::unordered_{map,set} variable
//                    in a file that writes exports (declares a write_*/
//                    export_*/to_json/to_csv function): unordered
//                    iteration order is implementation-defined, so
//                    anything rendered from it can drift across
//                    platforms. Iterate a sorted copy or a std::map.
//   float-format     a printf float conversion other than the pinned
//                    %.6g (spec writer) / %.17g (metrics, protocol) in
//                    a pinned-format path (spec/, specgen/, cas/,
//                    obs/metrics.cpp, service/protocol.cpp).
//   raw-mutex        std::mutex (and friends: condition_variable,
//                    lock_guard, unique_lock, scoped_lock, shared_*,
//                    recursive_*) outside util/: all locking goes
//                    through the annotated util::Mutex shim
//                    (util/mutex.h) so clang's -Werror=thread-safety
//                    can prove lock discipline.
//   enum-name-coverage
//                    an EnumName<T> table (util/enum_names.h) missing
//                    an enumerator of T: the enum and its wire
//                    spellings have drifted apart.
//   suppression-syntax
//                    a lint:allow comment with no reason text — every
//                    suppression must say why.
//
// Suppressions: `// lint:allow(<rule>) <reason>` in a comment on the
// finding's line, or alone on the line directly above it. The reason is
// mandatory.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace sunfloor::lint {

/// One file handed to the engine; `path` drives the path-scoped rules
/// (use '/'-separated repo-relative paths).
struct SourceFile {
    std::string path;
    std::string content;
};

struct Finding {
    std::string path;
    int line = 0;  ///< 1-based
    std::string rule;
    std::string message;
};

/// Every rule id the engine knows, in report order.
std::span<const char* const> rule_ids();

/// Run every rule over `files` (cross-file rules like
/// enum-name-coverage see all of them at once). Findings are sorted by
/// (path, line, rule) and already filtered through suppressions.
std::vector<Finding> run_lint(const std::vector<SourceFile>& files);

/// "path:line: [rule] message" lines, one per finding.
void write_text(std::ostream& os, const std::vector<Finding>& findings);

/// JSON report:
///   {"schema_version": 1, "count": N,
///    "findings": [{"file": ..., "line": N, "rule": ..., "message": ...}]}
/// Valid under obs::validate_json (pinned by lint_test).
std::string to_json(const std::vector<Finding>& findings);

}  // namespace sunfloor::lint
