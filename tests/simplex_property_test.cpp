// Property tests for the simplex: random feasible-by-construction LPs are
// solved to optimality-certified solutions (feasible, and no better
// solution among a large random sample), and random placement instances
// cross-check the LP against coordinate descent.
#include <gtest/gtest.h>

#include "sunfloor/lp/placement_lp.h"
#include "sunfloor/lp/simplex.h"
#include "sunfloor/util/rng.h"

namespace sunfloor {
namespace {

class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, FeasibleLpsSolveAndCertify) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
    const int n = 3 + static_cast<int>(rng.next_below(4));
    const int m = 2 + static_cast<int>(rng.next_below(5));

    // Construct around a known feasible point x0 >= 0.
    std::vector<double> x0(n);
    for (double& v : x0) v = rng.next_double() * 5.0;

    LpProblem lp;
    for (int v = 0; v < n; ++v)
        lp.add_variable(rng.next_double() * 4.0 - 1.0);
    for (int r = 0; r < m; ++r) {
        std::vector<std::pair<int, double>> terms;
        double lhs_at_x0 = 0.0;
        for (int v = 0; v < n; ++v) {
            if (!rng.next_bool(0.6)) continue;
            const double c = rng.next_double() * 4.0 - 2.0;
            terms.push_back({v, c});
            lhs_at_x0 += c * x0[static_cast<std::size_t>(v)];
        }
        if (terms.empty()) terms.push_back({0, 1.0});
        // rhs chosen so x0 satisfies the row with slack.
        lp.add_constraint(terms, Relation::LessEq,
                          lhs_at_x0 + rng.next_double() * 3.0 + 0.1);
    }
    // Box to keep the problem bounded.
    for (int v = 0; v < n; ++v)
        lp.add_constraint({{v, 1.0}}, Relation::LessEq, 50.0);

    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_TRUE(lp.is_feasible(res.x, 1e-6));
    EXPECT_LE(res.objective, lp.objective_value(x0) + 1e-6);

    // No random feasible point beats the reported optimum.
    for (int probe = 0; probe < 200; ++probe) {
        std::vector<double> x(static_cast<std::size_t>(n));
        for (double& v : x) v = rng.next_double() * 8.0;
        if (lp.is_feasible(x, 1e-9)) {
            EXPECT_GE(lp.objective_value(x), res.objective - 1e-6);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom, ::testing::Range(0, 20));

class PlacementRandom : public ::testing::TestWithParam<int> {};

TEST_P(PlacementRandom, LpNeverLosesToDescent) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
    PlacementProblem p;
    p.num_movable = 2 + static_cast<int>(rng.next_below(4));
    const int nfixed = 3 + static_cast<int>(rng.next_below(5));
    for (int f = 0; f < nfixed; ++f)
        p.fixed_points.push_back(
            {rng.next_double() * 12.0, rng.next_double() * 12.0});
    // Anchor every movable to at least one fixed point.
    for (int m = 0; m < p.num_movable; ++m)
        p.fixed_conns.push_back(
            {m, static_cast<int>(rng.next_below(nfixed)),
             0.5 + rng.next_double() * 3.0});
    for (int extra = 0; extra < p.num_movable; ++extra)
        if (rng.next_bool(0.7))
            p.fixed_conns.push_back(
                {static_cast<int>(rng.next_below(p.num_movable)),
                 static_cast<int>(rng.next_below(nfixed)),
                 rng.next_double() * 2.0});
    for (int m = 0; m + 1 < p.num_movable; ++m)
        if (rng.next_bool(0.8))
            p.movable_conns.push_back(
                {m, m + 1, 0.5 + rng.next_double() * 2.0});

    const auto lp = solve_placement_lp(p);
    ASSERT_TRUE(lp.ok);
    const auto med = solve_placement_median(p, 300);
    EXPECT_LE(lp.cost, med.cost + 1e-6);
    // And the LP solution really has the cost it claims.
    EXPECT_NEAR(lp.cost, placement_cost(p, lp.positions), 1e-9);
    // Perturbing the LP solution never improves it (local optimality of a
    // convex optimum = global).
    for (int probe = 0; probe < 50; ++probe) {
        auto pos = lp.positions;
        for (auto& pt : pos) {
            pt.x = std::max(0.0, pt.x + (rng.next_double() - 0.5));
            pt.y = std::max(0.0, pt.y + (rng.next_double() - 0.5));
        }
        EXPECT_GE(placement_cost(p, pos), lp.cost - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementRandom, ::testing::Range(0, 15));

}  // namespace
}  // namespace sunfloor
