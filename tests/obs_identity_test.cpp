// Observability must be a pure observer: exploration results and their
// exported artifacts are byte-identical whether or not a trace sink is
// installed, across thread counts and both evaluation backends. Also
// pins the shape of a real multi-threaded explore trace (valid JSON,
// balanced begin/end pairs per thread, the documented span taxonomy).
#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/obs/trace.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return cfg;
}

ExploreOptions backend_opts(EvalBackend backend, int threads) {
    ExploreOptions opts;
    opts.num_threads = threads;
    opts.backend = backend;
    if (backend == EvalBackend::Simulated) {
        opts.sim.warmup_cycles = 200;
        opts.sim.measure_cycles = 1000;
        opts.sim.inject.packet_length_flits = 2;
    }
    return opts;
}

ParamGrid small_grid() {
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    return grid;
}

/// The JSON and CSV artifacts of one exploration, serialized in-memory.
struct Artifacts {
    std::string json;
    std::string csv;
};

/// Wall-clock fields differ between any two runs (traced or not); mask
/// them so the comparison pins everything else byte-exactly — including
/// the stage hit/miss counts, which tracing must not disturb.
std::string mask_timing(const std::string& json) {
    static const std::regex re("\"(compute|elapsed)_ms\": [0-9.]+");
    return std::regex_replace(json, re, "\"$1_ms\": <t>");
}

/// With more than one worker, which thread wins a stage-cache race
/// decides whether a call counts as a hit or a miss — the split is
/// scheduling-dependent in any run, traced or not. The number of stage
/// calls (hits + misses) is fixed by the grid, so fold the pair into
/// its sum and pin that.
std::string fold_stage_hit_miss(const std::string& json) {
    static const std::regex re("\"hits\": ([0-9]+), \"misses\": ([0-9]+)");
    std::string out;
    std::size_t last = 0;
    for (auto it = std::sregex_iterator(json.begin(), json.end(), re);
         it != std::sregex_iterator(); ++it) {
        out.append(json, last, static_cast<std::size_t>(it->position(0)) - last);
        out += "\"calls\": " + std::to_string(std::stoll((*it)[1]) +
                                              std::stoll((*it)[2]));
        last = static_cast<std::size_t>(it->position(0) + it->length(0));
    }
    out.append(json, last, std::string::npos);
    return out;
}

Artifacts run_once(EvalBackend backend, int threads, bool traced) {
    if (traced) {
        EXPECT_TRUE(obs::start_tracing());
    }
    const DesignSpec spec = make_benchmark("D_36_4");
    const ExploreResult res =
        Explorer(spec, fast_cfg(), backend_opts(backend, threads))
            .run(small_grid());
    if (traced) {
        // The trace must at least have recorded the per-point spans.
        EXPECT_GT(obs::trace_buffered_events(), 0u);
        obs::discard_trace();
    }
    Artifacts a;
    std::ostringstream js, cs;
    write_explore_json(js, res, "D_36_4");
    explore_table(res).write_csv(cs);
    a.json = js.str();
    a.csv = cs.str();
    return a;
}

class ObsIdentity : public ::testing::TestWithParam<
                        std::tuple<EvalBackend, int>> {};

TEST_P(ObsIdentity, ExportsByteIdenticalTracedVsUntraced) {
    const auto [backend, threads] = GetParam();
    const Artifacts plain = run_once(backend, threads, false);
    const Artifacts traced = run_once(backend, threads, true);
    std::string pj = mask_timing(plain.json);
    std::string tj = mask_timing(traced.json);
    if (threads > 1) {
        pj = fold_stage_hit_miss(pj);
        tj = fold_stage_hit_miss(tj);
    }
    EXPECT_EQ(pj, tj);
    EXPECT_EQ(plain.csv, traced.csv);
    EXPECT_NE(plain.json.find("\"stages\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndThreads, ObsIdentity,
    ::testing::Combine(::testing::Values(EvalBackend::Analytic,
                                         EvalBackend::Simulated),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param) == EvalBackend::Analytic
                               ? "analytic"
                               : "simulated") +
               "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(ObsIdentityTrace, MultithreadedExploreTraceIsWellFormed) {
    ASSERT_TRUE(obs::start_tracing());
    const DesignSpec spec = make_benchmark("D_36_4");
    Explorer(spec, fast_cfg(),
             backend_opts(EvalBackend::Simulated, 4))
        .run(small_grid());
    std::ostringstream os;
    ASSERT_TRUE(obs::stop_tracing(os));
    const std::string trace = os.str();

    std::string err;
    EXPECT_TRUE(obs::validate_json(trace, &err)) << err;

    // Balanced begin/end pairs per (thread, span name), and the span
    // taxonomy the README documents actually shows up.
    static const std::regex re(
        "\\{\"name\": \"([^\"]+)\", \"cat\": \"[^\"]+\", \"ph\": "
        "\"([BE])\", \"ts\": [0-9.]+, \"pid\": 1, \"tid\": ([0-9]+)");
    std::map<std::pair<int, std::string>, int> open;
    std::map<std::string, int> begins;
    for (auto it = std::sregex_iterator(trace.begin(), trace.end(), re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1];
        const int tid = std::stoi((*it)[3]);
        int& depth = open[{tid, name}];
        if ((*it)[2] == "B") {
            ++depth;
            ++begins[name];
        } else {
            --depth;
            ASSERT_GE(depth, 0) << "E before B for " << name;
        }
    }
    for (const auto& [key, depth] : open)
        EXPECT_EQ(depth, 0) << "unbalanced span " << key.second
                            << " on tid " << key.first;
    for (const char* name :
         {"explore.point", "explore.sim", "explore.pareto", "pool.task",
          "pipeline.partition", "pipeline.routing", "pipeline.evaluation",
          "sim.warmup", "sim.measure", "sim.drain", "lp.solve"})
        EXPECT_GT(begins[name], 0) << "missing span " << name;
}

}  // namespace
}  // namespace sunfloor
