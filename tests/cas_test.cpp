// Content-addressed artifact store: round-trip fidelity, crash-safety
// (truncation, bit flips, stale tmp debris), size-bounded LRU eviction,
// the bit-exact artifact codec, session spill/load transparency and
// multi-process sharing of one directory.
#include <dirent.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "sunfloor/cas/codec.h"
#include "sunfloor/cas/store.h"
#include "sunfloor/core/synthesizer.h"
#include "sunfloor/obs/metrics.h"
#include "sunfloor/pipeline/session.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

struct TempDir {
    std::string path;
    TempDir() {
        char buf[] = "/tmp/sunfloor_cas_XXXXXX";
        const char* p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        if (p) path = p;
    }
    ~TempDir() {
        if (!path.empty()) std::system(("rm -rf " + path).c_str());
    }
};

cas::Store open_store(const std::string& dir, std::uint64_t max_bytes = 0) {
    return cas::Store(cas::StoreOptions{dir, max_bytes, 60.0});
}

long long counter(const char* name) {
    return obs::Registry::global().counter(name).value();
}

std::string read_file(const std::string& path) {
    std::string out;
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f) return out;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}

void write_file(const std::string& path, const std::string& bytes) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

void set_mtime(const std::string& path, std::time_t sec) {
    timespec times[2] = {{sec, 0}, {sec, 0}};
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = false;
    cfg.max_switches = 6;
    return cfg;
}

void expect_same_results(const SynthesisResult& a, const SynthesisResult& b) {
    EXPECT_EQ(a.phase_used, b.phase_used);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].valid, b.points[i].valid);
        EXPECT_EQ(a.points[i].fail_reason, b.points[i].fail_reason);
        EXPECT_EQ(a.points[i].switch_count, b.points[i].switch_count);
        EXPECT_EQ(a.points[i].topo.num_links(), b.points[i].topo.num_links());
        EXPECT_EQ(std::memcmp(&a.points[i].report.avg_latency_cycles,
                              &b.points[i].report.avg_latency_cycles,
                              sizeof(double)),
                  0);
        const double pa = a.points[i].report.power.total_mw();
        const double pb = b.points[i].report.power.total_mw();
        EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0);
    }
}

// ------------------------------------------------------------- store core

TEST(CasStore, PutGetRoundTripsArbitraryBytes) {
    TempDir dir;
    cas::Store store = open_store(dir.path);
    std::string payload = "binary\0payload\xff\x01";
    payload.push_back('\0');
    ASSERT_TRUE(store.put("some|stage|key", payload));
    EXPECT_TRUE(store.contains("some|stage|key"));
    std::string got;
    ASSERT_TRUE(store.get("some|stage|key", got));
    EXPECT_EQ(got, payload);

    // Overwrite wins; the old payload is gone.
    ASSERT_TRUE(store.put("some|stage|key", "v2"));
    ASSERT_TRUE(store.get("some|stage|key", got));
    EXPECT_EQ(got, "v2");

    // Absent keys miss without touching the hit counter.
    const long long hits = counter("cas.hits");
    const long long misses = counter("cas.misses");
    EXPECT_FALSE(store.get("never-stored", got));
    EXPECT_FALSE(store.contains("never-stored"));
    EXPECT_EQ(counter("cas.hits"), hits);
    EXPECT_EQ(counter("cas.misses"), misses + 1);

    const cas::StoreStats st = store.stats();
    EXPECT_EQ(st.objects, 1u);
    EXPECT_GT(st.object_bytes, 0u);
    EXPECT_EQ(st.tmp_files, 0u);
}

TEST(CasStore, ObjectNameIsThe16HexKeyHash) {
    const std::string name = cas::Store::object_name("k");
    EXPECT_EQ(name.size(), 16u);
    for (const char c : name)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    EXPECT_NE(name, cas::Store::object_name("k2"));
    EXPECT_EQ(name, cas::Store::object_name("k"));
}

TEST(CasStore, TruncatedObjectIsAMissAndUnlinked) {
    TempDir dir;
    cas::Store store = open_store(dir.path);
    const std::string key = "trunc-key";
    const std::string payload(500, 'x');
    const std::string path = dir.path + "/" + cas::Store::object_name(key);

    for (const std::size_t keep : {std::size_t{0}, std::size_t{10},
                                   std::size_t{27}, std::size_t{200}}) {
        ASSERT_TRUE(store.put(key, payload));
        const std::string blob = read_file(path);
        ASSERT_GT(blob.size(), keep);
        write_file(path, blob.substr(0, keep));

        const long long corrupt = counter("cas.corrupt");
        std::string got;
        EXPECT_FALSE(store.get(key, got)) << "keep=" << keep;
        EXPECT_EQ(counter("cas.corrupt"), corrupt + 1);
        // Debris is unlinked so the next writer starts clean.
        EXPECT_FALSE(file_exists(path));
        // Recompute-and-store works again afterwards.
        ASSERT_TRUE(store.put(key, payload));
        ASSERT_TRUE(store.get(key, got));
        EXPECT_EQ(got, payload);
    }
}

TEST(CasStore, BitFlippedPayloadIsAMissAndUnlinked) {
    TempDir dir;
    cas::Store store = open_store(dir.path);
    const std::string key = "flip-key";
    ASSERT_TRUE(store.put(key, std::string(300, 'y')));
    const std::string path = dir.path + "/" + cas::Store::object_name(key);
    std::string blob = read_file(path);
    blob.back() = static_cast<char>(blob.back() ^ 0x40);
    write_file(path, blob);

    const long long corrupt = counter("cas.corrupt");
    std::string got;
    EXPECT_FALSE(store.get(key, got));
    EXPECT_EQ(counter("cas.corrupt"), corrupt + 1);
    EXPECT_FALSE(file_exists(path));
}

TEST(CasStore, BadMagicIsAMissAndUnlinked) {
    TempDir dir;
    cas::Store store = open_store(dir.path);
    ASSERT_TRUE(store.put("magic-key", "payload"));
    const std::string path =
        dir.path + "/" + cas::Store::object_name("magic-key");
    std::string blob = read_file(path);
    blob[0] = 'X';
    write_file(path, blob);
    std::string got;
    EXPECT_FALSE(store.get("magic-key", got));
    EXPECT_FALSE(file_exists(path));
}

TEST(CasStore, MisRenamedObjectIsAMissButNotDebris) {
    // A hash collision (or a mis-renamed file) presents an *intact* object
    // under the wrong name: the key echo catches it. It is a miss — the
    // payload belongs to another key — but not corruption, so the store
    // must not destroy the other key's object.
    TempDir dir;
    cas::Store store = open_store(dir.path);
    ASSERT_TRUE(store.put("owner-key", "owner-payload"));
    const std::string src = dir.path + "/" + cas::Store::object_name("owner-key");
    const std::string dst = dir.path + "/" + cas::Store::object_name("other-key");
    ASSERT_EQ(::rename(src.c_str(), dst.c_str()), 0);

    const long long corrupt = counter("cas.corrupt");
    std::string got;
    EXPECT_FALSE(store.get("other-key", got));
    EXPECT_FALSE(store.contains("other-key"));
    EXPECT_EQ(counter("cas.corrupt"), corrupt);  // not counted as corrupt
    EXPECT_TRUE(file_exists(dst));               // and not unlinked
}

TEST(CasStore, GcReapsStaleTmpDebrisButSparesLiveWriters) {
    TempDir dir;
    cas::Store store = open_store(dir.path);
    ASSERT_TRUE(store.put("kept", "kept-payload"));

    // A crashed writer's leftovers (old mtime) and a live writer's tmp
    // file (fresh mtime) side by side.
    const std::string stale = dir.path + "/00000000deadbeef.tmp.1234.7";
    const std::string fresh = dir.path + "/00000000deadbeef.tmp.1234.8";
    write_file(stale, "half-written");
    write_file(fresh, "half-written");
    // lint:allow(nondet-time) back-dating a file mtime to exercise GC age
    set_mtime(stale, std::time(nullptr) - 3600);

    cas::StoreStats st = store.stats();
    EXPECT_EQ(st.tmp_files, 2u);
    EXPECT_GT(st.tmp_bytes, 0u);

    const cas::GcResult r = store.gc();
    EXPECT_EQ(r.removed_tmp, 1u);
    EXPECT_EQ(r.evicted_objects, 0u);
    EXPECT_FALSE(file_exists(stale));
    EXPECT_TRUE(file_exists(fresh));
    EXPECT_TRUE(store.contains("kept"));
}

TEST(CasStore, GcEvictsLeastRecentlyUsedUntilUnderTheBound) {
    TempDir dir;
    const std::string payload(1000, 'z');
    std::vector<std::string> keys = {"a", "b", "c", "d"};
    std::uint64_t per_object = 0;
    {
        cas::Store store = open_store(dir.path);
        for (const std::string& k : keys) ASSERT_TRUE(store.put(k, payload));
        per_object = store.stats().object_bytes / keys.size();
    }
    // Pin the recency order explicitly (mtime drives eviction): "a" oldest,
    // "d" newest.
    // lint:allow(nondet-time) back-dating file mtimes to pin GC recency
    const std::time_t now = std::time(nullptr);
    for (std::size_t i = 0; i < keys.size(); ++i)
        set_mtime(dir.path + "/" + cas::Store::object_name(keys[i]),
                  now - 1000 + static_cast<std::time_t>(100 * i));

    // Bound to two objects: the two oldest must go, newest survive.
    cas::Store bounded = open_store(dir.path, 2 * per_object);
    const long long evictions = counter("cas.evictions");
    const cas::GcResult r = bounded.gc();
    EXPECT_EQ(r.evicted_objects, 2u);
    EXPECT_EQ(r.evicted_bytes, 2 * per_object);
    EXPECT_EQ(counter("cas.evictions"), evictions + 2);
    EXPECT_FALSE(bounded.contains("a"));
    EXPECT_FALSE(bounded.contains("b"));
    EXPECT_TRUE(bounded.contains("c"));
    EXPECT_TRUE(bounded.contains("d"));
    // Already under the bound: a second gc is a no-op.
    EXPECT_EQ(bounded.gc().evicted_objects, 0u);
}

TEST(CasStore, SuccessfulLoadRefreshesTheEvictionOrder) {
    TempDir dir;
    const std::string payload(1000, 'z');
    cas::Store store = open_store(dir.path);
    for (const char* k : {"old", "new"}) ASSERT_TRUE(store.put(k, payload));
    // lint:allow(nondet-time) back-dating file mtimes to pin GC recency
    const std::time_t now = std::time(nullptr);
    set_mtime(dir.path + "/" + cas::Store::object_name("old"), now - 1000);
    set_mtime(dir.path + "/" + cas::Store::object_name("new"), now - 500);

    // Loading "old" bumps it ahead of "new" in the LRU order.
    std::string got;
    ASSERT_TRUE(store.get("old", got));

    cas::Store bounded =
        open_store(dir.path, store.stats().object_bytes / 2);
    ASSERT_EQ(bounded.gc().evicted_objects, 1u);
    EXPECT_TRUE(bounded.contains("old"));
    EXPECT_FALSE(bounded.contains("new"));
}

// ----------------------------------------------------------------- codec

TEST(CasCodec, ArtifactsRoundTripBitExactly) {
    const DesignSpec spec = make_benchmark("D_36_4");
    SynthesisConfig cfg = fast_cfg();
    cfg.run_floorplan = true;  // exercise the die-area vector too

    pipeline::SynthesisSession session(spec);
    const RngState rng_in = Rng(cfg.seed).state();
    // Find a switch count whose assignment routes (the sweep's job); the
    // codec must handle whichever artifacts fall out.
    std::shared_ptr<const pipeline::PartitionArtifact> part;
    std::unique_ptr<pipeline::AssignmentArtifact> assign_holder;
    std::unique_ptr<pipeline::RoutingArtifact> routed_holder;
    for (int k = 2; k <= cfg.max_switches && !routed_holder; ++k) {
        part = session.partition(pipeline::PartitionGraphId::pg(), k, cfg,
                                 cfg.partition, rng_in);
        auto a = std::make_unique<pipeline::AssignmentArtifact>(
            pipeline::phase1_assignment(*part, spec.cores));
        auto r = std::make_unique<pipeline::RoutingArtifact>(
            pipeline::route_assignment(spec, cfg, a->assign));
        if (!r->ok) continue;
        assign_holder = std::move(a);
        routed_holder = std::move(r);
    }
    ASSERT_TRUE(routed_holder) << "no switch count routed";
    const pipeline::AssignmentArtifact& assign = *assign_holder;
    const pipeline::RoutingArtifact& routed = *routed_holder;
    Rng prng(cfg.seed);
    const pipeline::PlacementArtifact placed =
        pipeline::place_design(routed, spec, cfg, prng);
    const pipeline::EvaluatedDesign evaluated(
        pipeline::evaluate_design(placed, spec, cfg));

    // encode(decode(encode(x))) == encode(x), byte for byte, for every
    // artifact kind — the property the CAS spill path rests on.
    {
        const std::string blob = cas::encode_partition(*part);
        EXPECT_EQ(blob, cas::encode_partition(*part));  // deterministic
        const auto back = cas::decode_partition(blob);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_partition(*back), blob);
        EXPECT_EQ(back->block, part->block);
        EXPECT_EQ(back->k, part->k);
        EXPECT_EQ(back->rng_after, part->rng_after);
    }
    {
        const std::string blob = cas::encode_assignment(assign);
        const auto back = cas::decode_assignment(blob);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_assignment(*back), blob);
        EXPECT_EQ(back->key, assign.key);
    }
    {
        const std::string blob = cas::encode_routing(routed);
        const auto back = cas::decode_routing(blob, spec);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_routing(*back), blob);
        EXPECT_EQ(back->ok, routed.ok);
        EXPECT_EQ(back->topo.num_links(), routed.topo.num_links());
        EXPECT_EQ(pipeline::topology_fingerprint(back->topo),
                  pipeline::topology_fingerprint(routed.topo));
    }
    {
        // The failure side of a routing artifact round-trips too.
        pipeline::RoutingArtifact failed = routed;
        failed.ok = false;
        failed.fail_reason = "pruned: test";
        failed.failed_flows = 3;
        failed.capacity_violations = 1;
        const std::string blob = cas::encode_routing(failed);
        const auto back = cas::decode_routing(blob, spec);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_routing(*back), blob);
        EXPECT_EQ(back->fail_reason, "pruned: test");
    }
    {
        const std::string blob = cas::encode_placement(placed);
        const auto back = cas::decode_placement(blob, spec);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_placement(*back), blob);
        EXPECT_EQ(back->layer_die_area_mm2.size(),
                  placed.layer_die_area_mm2.size());
        EXPECT_EQ(pipeline::topology_fingerprint(back->topo),
                  pipeline::topology_fingerprint(placed.topo));
    }
    {
        const std::string blob = cas::encode_evaluation(evaluated);
        const auto back = cas::decode_evaluation(blob, spec);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(cas::encode_evaluation(*back), blob);
        EXPECT_EQ(back->point.valid, evaluated.point.valid);
        const double pa = back->point.report.power.total_mw();
        const double pb = evaluated.point.report.power.total_mw();
        EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0);
    }
}

TEST(CasCodec, MalformedBlobsDecodeToNullopt) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    pipeline::SynthesisSession session(spec);
    const auto part =
        session.partition(pipeline::PartitionGraphId::pg(), 4, cfg,
                          cfg.partition, Rng(cfg.seed).state());
    const pipeline::AssignmentArtifact assign =
        pipeline::phase1_assignment(*part, spec.cores);
    const pipeline::RoutingArtifact routed =
        pipeline::route_assignment(spec, cfg, assign.assign);
    const pipeline::EvaluatedDesign evaluated(
        pipeline::evaluate_design(pipeline::PlacementArtifact(routed.topo),
                                  spec, cfg));

    const std::string blobs[] = {
        cas::encode_partition(*part),
        cas::encode_assignment(assign),
        cas::encode_routing(routed),
        cas::encode_evaluation(evaluated),
    };
    for (const std::string& blob : blobs) {
        // Every strict prefix is a truncation; trailing garbage is noise a
        // mis-addressed read could produce. Both must be clean misses.
        const std::size_t cuts[] = {0, 1, blob.size() / 2, blob.size() - 1};
        for (const std::size_t cut : cuts) {
            const std::string t = blob.substr(0, cut);
            EXPECT_FALSE(cas::decode_partition(t).has_value());
            EXPECT_FALSE(cas::decode_assignment(t).has_value());
            EXPECT_FALSE(cas::decode_routing(t, spec).has_value());
            EXPECT_FALSE(cas::decode_placement(t, spec).has_value());
            EXPECT_FALSE(cas::decode_evaluation(t, spec).has_value());
        }
        const std::string noisy = blob + "x";
        EXPECT_FALSE(cas::decode_partition(noisy).has_value());
        EXPECT_FALSE(cas::decode_assignment(noisy).has_value());
        EXPECT_FALSE(cas::decode_routing(noisy, spec).has_value());
        EXPECT_FALSE(cas::decode_placement(noisy, spec).has_value());
        EXPECT_FALSE(cas::decode_evaluation(noisy, spec).has_value());
    }
}

// ------------------------------------------------------ session + store

TEST(CasSession, AttachingAStoreIsUnobservableInTheResults) {
    TempDir dir;
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();

    pipeline::SessionOptions so;
    so.cas = std::make_shared<cas::Store>(
        cas::StoreOptions{dir.path, 0, 60.0});
    pipeline::SynthesisSession session(spec, so);
    const SynthesisResult got = session.run(cfg);
    expect_same_results(got, run_synthesis(spec, cfg));
    // The cold run spilled every computed artifact.
    EXPECT_GT(so.cas->stats().objects, 0u);
    EXPECT_EQ(so.cas->stats().tmp_files, 0u);
}

TEST(CasSession, WarmStoreServesAFreshSessionBitIdentically) {
    TempDir dir;
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const SynthesisResult ref = run_synthesis(spec, cfg);

    {
        pipeline::SessionOptions so;
        so.cas = std::make_shared<cas::Store>(
            cas::StoreOptions{dir.path, 0, 60.0});
        pipeline::SynthesisSession warmup(spec, so);
        expect_same_results(warmup.run(cfg), ref);
    }

    // A brand-new process would start exactly here: empty in-memory
    // caches, a populated store. Every artifact must come back from disk
    // (stage hits without stage misses' compute) and the results must be
    // bit-identical to the cold flow.
    pipeline::SessionOptions so;
    so.cas = std::make_shared<cas::Store>(
        cas::StoreOptions{dir.path, 0, 60.0});
    const long long hits_before = counter("cas.hits");
    pipeline::SynthesisSession fresh(spec, so);
    const SynthesisResult got = fresh.run(cfg);
    expect_same_results(got, ref);
    EXPECT_GT(counter("cas.hits"), hits_before);
    const pipeline::SessionStats st = fresh.stats();
    EXPECT_GT(st.partition.hits + st.routing.hits + st.placement.hits +
                  st.evaluation.hits,
              0);
}

TEST(CasSession, CorruptedObjectsAreRecomputedNeverServed) {
    TempDir dir;
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const SynthesisResult ref = run_synthesis(spec, cfg);

    {
        pipeline::SessionOptions so;
        so.cas = std::make_shared<cas::Store>(
            cas::StoreOptions{dir.path, 0, 60.0});
        pipeline::SynthesisSession warmup(spec, so);
        warmup.run(cfg);
    }

    // Flip the last byte of every object in the store — the payload
    // checksum must catch each one.
    std::uint64_t flipped = 0;
    {
        cas::Store census = open_store(dir.path);
        flipped = census.stats().objects;
    }
    ASSERT_GT(flipped, 0u);
    {
        DIR* d = ::opendir(dir.path.c_str());
        ASSERT_NE(d, nullptr);
        while (const dirent* e = ::readdir(d)) {
            const std::string name(e->d_name);
            if (name == "." || name == "..") continue;
            const std::string path = dir.path + "/" + name;
            std::string blob = read_file(path);
            ASSERT_FALSE(blob.empty());
            blob.back() = static_cast<char>(blob.back() ^ 0x01);
            write_file(path, blob);
        }
        ::closedir(d);
    }

    const long long corrupt_before = counter("cas.corrupt");
    pipeline::SessionOptions so;
    so.cas = std::make_shared<cas::Store>(
        cas::StoreOptions{dir.path, 0, 60.0});
    pipeline::SynthesisSession fresh(spec, so);
    const SynthesisResult got = fresh.run(cfg);
    expect_same_results(got, ref);
    EXPECT_GT(counter("cas.corrupt"), corrupt_before);
    // Nothing was served from the corrupted store...
    EXPECT_EQ(fresh.stats().partition.hits, 0);
    // ...and the recomputed artifacts replaced the debris intact.
    cas::Store verify = open_store(dir.path);
    EXPECT_EQ(verify.stats().objects, flipped);
}

// -------------------------------------------------------- multi-process

TEST(CasStore, ConcurrentProcessesShareOneDirectorySafely) {
    TempDir dir;
    constexpr int kProcs = 4;
    constexpr int kKeys = 24;
    const auto key_of = [](int i) {
        return "shared|key|" + std::to_string(i);
    };
    const auto payload_of = [](int i) {
        std::string p = "payload-" + std::to_string(i) + "-";
        p.append(static_cast<std::size_t>(200 + i),
                 static_cast<char>('a' + i % 26));
        return p;
    };

    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: no gtest machinery — report through the exit code.
            try {
                cas::Store store(cas::StoreOptions{dir.path, 0, 60.0});
                for (int round = 0; round < 5; ++round) {
                    for (int i = 0; i < kKeys; ++i) {
                        if ((i + round + p) % 2 == 0) {
                            if (!store.put(key_of(i), payload_of(i)))
                                ::_exit(2);
                        } else {
                            std::string got;
                            // A racing get may miss (another process is
                            // mid-rename) but must never see wrong bytes.
                            if (store.get(key_of(i), got) &&
                                got != payload_of(i))
                                ::_exit(3);
                        }
                    }
                    store.gc();
                }
            } catch (...) {
                ::_exit(4);
            }
            ::_exit(0);
        }
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }

    // Afterwards every key holds exactly its payload and no tmp debris
    // survived the concurrent writers.
    cas::Store store = open_store(dir.path);
    for (int i = 0; i < kKeys; ++i) {
        std::string got;
        ASSERT_TRUE(store.get(key_of(i), got)) << key_of(i);
        EXPECT_EQ(got, payload_of(i));
    }
    EXPECT_EQ(store.stats().tmp_files, 0u);
}

}  // namespace
}  // namespace sunfloor
