// Wire-protocol input validation: every malformed frame is rejected
// with an error naming the offending field, byte, or limit — these
// strings are part of the protocol surface, so the tests pin them.
// Also covers the client frame builders (round-trip through
// parse_request), build_job_request's spec-error passthrough, and the
// batch_key artifact-affinity contract.
#include <gtest/gtest.h>

#include <string>

#include "sunfloor/service/job_engine.h"
#include "sunfloor/service/protocol.h"
#include "sunfloor/service/transport.h"
#include "sunfloor/spec/benchmarks.h"
#include "sunfloor/spec/parser.h"

namespace sunfloor::service {
namespace {

constexpr long long kNoLimit = 0;

// A minimal valid two-core spec for frames that must get past the spec
// parser.
const char kTinySpec[] =
    "core a 1.0 1.0 0 0 0\n"
    "core b 1.0 1.0 1 0 0\n"
    "flow a b 100 1000 req\n";

std::string parse_error(const std::string& frame,
                        long long max_bytes = kNoLimit) {
    Request req;
    std::string error;
    EXPECT_FALSE(parse_request(frame, max_bytes, req, error)) << frame;
    return error;
}

Request parse_ok(const std::string& frame) {
    Request req;
    std::string error;
    EXPECT_TRUE(parse_request(frame, kNoLimit, req, error)) << error;
    return req;
}

std::string submit_frame(const std::string& config_json,
                         const char* kind = "synth") {
    std::string f = "{\"op\":\"submit\",\"kind\":\"";
    f += kind;
    f += "\",\"spec\":\"core a 1 1 0 0 0\\n\"";
    if (!config_json.empty()) f += ",\"config\":" + config_json;
    return f + "}";
}

// ----------------------------------------------------- frame-level checks

TEST(ServiceProto, OversizedFrameNamesBothSizes) {
    const std::string frame(100, ' ');
    EXPECT_EQ(parse_error(frame, 64),
              "frame of 100 bytes exceeds the 64 byte limit");
}

TEST(ServiceProto, MalformedJsonCarriesByteOffset) {
    const std::string err = parse_error("{\"op\":");
    EXPECT_EQ(err.rfind("malformed JSON: ", 0), 0u) << err;
    EXPECT_NE(err.find("at byte"), std::string::npos) << err;
}

TEST(ServiceProto, DuplicateKeysRejected) {
    const std::string err =
        parse_error("{\"op\":\"stats\",\"op\":\"stats\"}");
    EXPECT_NE(err.find("duplicate object key \"op\""), std::string::npos)
        << err;
}

TEST(ServiceProto, NonObjectFrameRejected) {
    EXPECT_EQ(parse_error("[1,2,3]"),
              "request frame must be a JSON object");
}

TEST(ServiceProto, MissingOrBadOp) {
    EXPECT_EQ(parse_error("{}"), "request missing required field \"op\"");
    EXPECT_EQ(parse_error("{\"op\":7}"),
              "bad \"op\" value: expected a string");
    EXPECT_EQ(parse_error("{\"op\":\"frobnicate\"}"),
              "unknown op \"frobnicate\" (expected "
              "submit|status|result|stats|shutdown)");
}

// ------------------------------------------------------- submit validation

TEST(ServiceProto, SubmitRequiresSpec) {
    EXPECT_EQ(parse_error("{\"op\":\"submit\"}"),
              "submit request missing required field \"spec\"");
    EXPECT_EQ(parse_error("{\"op\":\"submit\",\"spec\":\"\"}"),
              "bad \"spec\" value: expected a non-empty string");
}

TEST(ServiceProto, SubmitUnknownTopLevelFieldNamed) {
    EXPECT_EQ(
        parse_error(
            "{\"op\":\"submit\",\"spec\":\"x\",\"frobnicate\":1}"),
        "unknown field \"frobnicate\" in submit request");
}

TEST(ServiceProto, UnknownConfigFieldNamed) {
    EXPECT_EQ(parse_error(submit_frame("{\"frobnicate\":1}")),
              "unknown field \"config.frobnicate\"");
}

TEST(ServiceProto, NonFiniteFrequencyRejectedByTheJsonLayer) {
    // "1e999" overflows to inf; the strict parser refuses it before the
    // field validator ever sees a value.
    const std::string err =
        parse_error(submit_frame("{\"freq_mhz\":1e999}"));
    EXPECT_NE(err.find("malformed or non-finite number"),
              std::string::npos)
        << err;
}

TEST(ServiceProto, NumericKnobDomainsAreChecked) {
    EXPECT_EQ(parse_error(submit_frame("{\"freq_mhz\":0}")),
              "bad \"config.freq_mhz\" value: expected a finite number "
              "> 0");
    EXPECT_EQ(parse_error(submit_frame("{\"freq_mhz\":\"fast\"}")),
              "bad \"config.freq_mhz\" value: expected a finite number "
              "> 0");
    EXPECT_EQ(parse_error(submit_frame("{\"max_tsvs\":0}")),
              "bad \"config.max_tsvs\" value: expected an integer >= 1");
    EXPECT_EQ(parse_error(submit_frame("{\"max_tsvs\":2.5}")),
              "bad \"config.max_tsvs\" value: expected an integer >= 1");
    EXPECT_EQ(parse_error(submit_frame("{\"alpha\":1.5}")),
              "bad \"config.alpha\" value: expected a number in [0, 1]");
    EXPECT_EQ(parse_error(submit_frame("{\"seed\":-1}")),
              "bad \"config.seed\" value: expected a non-negative "
              "integer");
    EXPECT_EQ(parse_error(submit_frame("{\"floorplan\":1}")),
              "bad \"config.floorplan\" value: expected a bool");
}

TEST(ServiceProto, BadEnumValuesListTheChoices) {
    const std::string phase_err =
        parse_error(submit_frame("{\"phase\":\"phase9\"}"));
    EXPECT_EQ(phase_err.rfind("bad \"config.phase\" value", 0), 0u)
        << phase_err;
    const std::string routing_err =
        parse_error(submit_frame("{\"routing\":\"zigzag\"}"));
    EXPECT_EQ(routing_err.rfind("bad \"config.routing\" value", 0), 0u)
        << routing_err;
    const std::string kind_err = parse_error(
        "{\"op\":\"submit\",\"spec\":\"x\",\"kind\":\"dream\"}");
    EXPECT_EQ(kind_err, "bad \"kind\" value (expected synth|explore)");
}

TEST(ServiceProto, EmptyAxisArrayRejected) {
    EXPECT_EQ(parse_error(submit_frame("{\"freq_mhz\":[]}")),
              "field \"config.freq_mhz\" must not be an empty array");
}

TEST(ServiceProto, SynthJobsRejectMultiValuedAxes) {
    EXPECT_EQ(parse_error(submit_frame("{\"freq_mhz\":[400,600]}")),
              "field \"config.freq_mhz\" must be a single value for "
              "synth jobs");
    // The same frame is a legal explore job.
    const Request req =
        parse_ok(submit_frame("{\"freq_mhz\":[400,600]}", "explore"));
    EXPECT_EQ(req.submit.kind, JobKind::Explore);
    ASSERT_EQ(req.submit.params.freq_mhz.size(), 2u);
}

TEST(ServiceProto, SynthJobsRejectExploreOnlyAxes) {
    EXPECT_EQ(parse_error(submit_frame("{\"theta\":0.5}")),
              "field \"config.theta\" is only valid for explore jobs");
    EXPECT_EQ(parse_error(submit_frame("{\"width_bits\":32}")),
              "field \"config.width_bits\" is only valid for explore "
              "jobs");
    const Request req =
        parse_ok(submit_frame("{\"theta\":0.5}", "explore"));
    ASSERT_EQ(req.submit.params.thetas.size(), 1u);
    EXPECT_DOUBLE_EQ(req.submit.params.thetas[0], 0.5);
}

TEST(ServiceProto, ScalarAxesParseAsOneElementVectors) {
    const Request req = parse_ok(submit_frame(
        "{\"freq_mhz\":500,\"max_tsvs\":12,\"phase\":\"1\","
        "\"routing\":\"up-down\",\"alpha\":0.25,\"seed\":7,"
        "\"floorplan\":false}"));
    const JobParams& p = req.submit.params;
    ASSERT_EQ(p.freq_mhz.size(), 1u);
    EXPECT_DOUBLE_EQ(p.freq_mhz[0], 500.0);
    ASSERT_EQ(p.max_tsvs.size(), 1u);
    EXPECT_EQ(p.max_tsvs[0], 12);
    ASSERT_EQ(p.phases.size(), 1u);
    EXPECT_EQ(p.phases[0], SynthesisPhase::Phase1);
    ASSERT_EQ(p.routings.size(), 1u);
    EXPECT_DOUBLE_EQ(p.alpha, 0.25);
    EXPECT_EQ(p.seed, 7);
    EXPECT_FALSE(p.floorplan);
}

// --------------------------------------------------- status/result/stats

TEST(ServiceProto, IdRequestsRequireAnId) {
    EXPECT_EQ(parse_error("{\"op\":\"status\"}"),
              "status request missing required field \"id\"");
    EXPECT_EQ(parse_error("{\"op\":\"result\"}"),
              "result request missing required field \"id\"");
    EXPECT_EQ(parse_error("{\"op\":\"status\",\"id\":-3}"),
              "bad \"id\" value: expected a non-negative integer");
    EXPECT_EQ(parse_error("{\"op\":\"status\",\"id\":1.5}"),
              "bad \"id\" value: expected a non-negative integer");
}

TEST(ServiceProto, StatusDoesNotAcceptWait) {
    EXPECT_EQ(parse_error("{\"op\":\"status\",\"id\":1,\"wait\":true}"),
              "unknown field \"wait\" in status request");
    const Request req =
        parse_ok("{\"op\":\"result\",\"id\":1,\"wait\":true}");
    EXPECT_EQ(req.op, Request::Op::Result);
    EXPECT_TRUE(req.wait);
}

TEST(ServiceProto, StatsAndShutdownRejectExtraFields) {
    EXPECT_EQ(parse_error("{\"op\":\"stats\",\"id\":1}"),
              "unknown field \"id\" in stats request");
    EXPECT_EQ(parse_error("{\"op\":\"shutdown\",\"force\":true}"),
              "unknown field \"force\" in shutdown request");
}

// ------------------------------------------------- frame builders round-trip

TEST(ServiceProto, SubmitFrameRoundTripsThroughParseRequest) {
    SubmitRequest sr;
    sr.client = "ci \"quoted\"";
    sr.kind = JobKind::Explore;
    sr.spec_name = "tiny";
    sr.spec_text = kTinySpec;
    sr.params.freq_mhz = {400.0, 612.5};
    sr.params.max_tsvs = {10, 25};
    sr.params.width_bits = {16, 32};
    sr.params.thetas = {0.25, 0.75};
    sr.params.phases = {SynthesisPhase::Phase1, SynthesisPhase::Phase2};
    sr.params.alpha = 0.375;
    sr.params.seed = 1234567;
    sr.params.floorplan = false;
    sr.wait = true;

    const Request req = parse_ok(make_submit_frame(sr));
    EXPECT_EQ(req.op, Request::Op::Submit);
    EXPECT_EQ(req.submit.client, sr.client);
    EXPECT_EQ(req.submit.kind, JobKind::Explore);
    EXPECT_EQ(req.submit.spec_name, "tiny");
    EXPECT_EQ(req.submit.spec_text, sr.spec_text);
    EXPECT_EQ(req.submit.params.freq_mhz, sr.params.freq_mhz);
    EXPECT_EQ(req.submit.params.max_tsvs, sr.params.max_tsvs);
    EXPECT_EQ(req.submit.params.width_bits, sr.params.width_bits);
    EXPECT_EQ(req.submit.params.thetas, sr.params.thetas);
    EXPECT_EQ(req.submit.params.phases, sr.params.phases);
    EXPECT_DOUBLE_EQ(req.submit.params.alpha, 0.375);
    EXPECT_EQ(req.submit.params.seed, 1234567);
    EXPECT_FALSE(req.submit.params.floorplan);
    EXPECT_TRUE(req.submit.wait);
}

TEST(ServiceProto, IdAndNullaryFramesRoundTrip) {
    Request req = parse_ok(make_status_frame(42));
    EXPECT_EQ(req.op, Request::Op::Status);
    EXPECT_EQ(req.id, 42u);
    req = parse_ok(make_result_frame(7, true));
    EXPECT_EQ(req.op, Request::Op::Result);
    EXPECT_EQ(req.id, 7u);
    EXPECT_TRUE(req.wait);
    EXPECT_EQ(parse_ok(make_stats_frame()).op, Request::Op::Stats);
    EXPECT_EQ(parse_ok(make_shutdown_frame()).op, Request::Op::Shutdown);
}

// ------------------------------------------------------ build_job_request

TEST(ServiceProto, BuildJobRequestParsesTheSpecText) {
    SubmitRequest sr;
    sr.spec_text = kTinySpec;
    sr.spec_name = "tiny";
    JobRequest jr;
    std::string error;
    ASSERT_TRUE(build_job_request(sr, jr, error)) << error;
    EXPECT_EQ(jr.spec.name, "tiny");
    EXPECT_EQ(jr.spec.cores.num_cores(), 2);
    EXPECT_EQ(jr.spec_text, sr.spec_text);
}

TEST(ServiceProto, BuildJobRequestPassesSpecErrorsThroughPrefixed) {
    SubmitRequest sr;
    sr.spec_text = "core a 1 1 0 0 0\nbogus line here\n";
    JobRequest jr;
    std::string error;
    EXPECT_FALSE(build_job_request(sr, jr, error));
    EXPECT_EQ(error.rfind("spec: ", 0), 0u) << error;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ------------------------------------------------------------- batch_key

TEST(ServiceProto, BatchKeyGroupsByPartitionInputsOnly) {
    SubmitRequest sr;
    sr.spec_text = kTinySpec;
    JobRequest base;
    std::string error;
    ASSERT_TRUE(build_job_request(sr, base, error)) << error;
    const std::string key = JobEngine::batch_key(base);

    // Routing-stage knobs do not split the bucket.
    JobRequest same = base;
    same.params.freq_mhz = {612.0};
    same.params.max_tsvs = {10};
    same.params.width_bits = {16};
    EXPECT_EQ(JobEngine::batch_key(same), key);

    // Partition-stage inputs do.
    JobRequest other = base;
    other.params.alpha = 0.5;
    EXPECT_NE(JobEngine::batch_key(other), key);
    other = base;
    other.params.seed = 99;
    EXPECT_NE(JobEngine::batch_key(other), key);
    other = base;
    other.params.thetas = {0.5};
    EXPECT_NE(JobEngine::batch_key(other), key);
    other = base;
    other.params.phases = {SynthesisPhase::Phase2};
    EXPECT_NE(JobEngine::batch_key(other), key);
    other = base;
    other.spec_text += "# different spec text\n";
    EXPECT_NE(JobEngine::batch_key(other), key);
}

// ------------------------------------------------------- address parsing

TEST(ServiceProto, ParseAddressClassifiesUnixAndTcp) {
    Address a;
    std::string error;
    ASSERT_TRUE(parse_address("/tmp/sunfloord.sock", a, error));
    EXPECT_TRUE(a.is_unix);
    EXPECT_EQ(a.path, "/tmp/sunfloord.sock");
    ASSERT_TRUE(parse_address("127.0.0.1:7070", a, error));
    EXPECT_FALSE(a.is_unix);
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 7070);
    EXPECT_FALSE(parse_address("", a, error));
    EXPECT_EQ(error, "empty address");
    EXPECT_FALSE(parse_address("localhost", a, error));
    EXPECT_NE(error.find("expected host:port"), std::string::npos);
    EXPECT_FALSE(parse_address("localhost:0", a, error));
    EXPECT_EQ(error, "bad port in address \"localhost:0\"");
}

}  // namespace
}  // namespace sunfloor::service
