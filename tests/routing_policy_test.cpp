// Tests for the pluggable routing subsystem: the RoutingPolicy automata,
// route-set enumeration, and the deadlock property tests over the
// enlarged (adaptive) route sets on every paper benchmark.
#include <gtest/gtest.h>

#include "sunfloor/core/path_compute.h"
#include "sunfloor/core/synthesizer.h"
#include "sunfloor/graph/algorithms.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/routing/policy.h"
#include "sunfloor/routing/route_sets.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

using routing::RoutingPolicyId;
using routing::SwitchView;

constexpr RoutingPolicyId kAllPolicies[] = {
    RoutingPolicyId::UpDown,
    RoutingPolicyId::WestFirst,
    RoutingPolicyId::OddEven,
};

SwitchView sw(int index, int layer = 0) { return {index, layer}; }

TEST(RoutingPolicy, UpDownAutomatonIsAscendThenDescend) {
    const auto& p = routing::routing_policy(RoutingPolicyId::UpDown);
    EXPECT_EQ(p.num_states(), 2);
    EXPECT_EQ(p.initial_state(), 0);
    EXPECT_FALSE(p.adaptive_in_sim());
    // Ascending keeps the ascent alive; descending turns, once.
    EXPECT_EQ(p.next_state(sw(2), sw(5), 0), 0);
    EXPECT_EQ(p.next_state(sw(5), sw(3), 0), 1);
    EXPECT_EQ(p.next_state(sw(3), sw(1), 1), 1);
    // Down -> up is forbidden.
    EXPECT_EQ(p.next_state(sw(1), sw(4), 1), -1);
}

TEST(RoutingPolicy, WestFirstIsTheMirrorDiscipline) {
    const auto& p = routing::routing_policy(RoutingPolicyId::WestFirst);
    EXPECT_TRUE(p.adaptive_in_sim());
    // All westward (index-decreasing) hops come first.
    EXPECT_EQ(p.next_state(sw(5), sw(2), 0), 0);
    EXPECT_EQ(p.next_state(sw(2), sw(4), 0), 1);
    EXPECT_EQ(p.next_state(sw(4), sw(6), 1), 1);
    // After turning east, west is forbidden.
    EXPECT_EQ(p.next_state(sw(6), sw(3), 1), -1);
}

TEST(RoutingPolicy, OddEvenOrdersByParityThenIndex) {
    const auto& p = routing::routing_policy(RoutingPolicyId::OddEven);
    EXPECT_TRUE(p.adaptive_in_sim());
    // Even-index switches rank below odd-index ones: 2 -> 3 ascends,
    // 3 -> 2 descends, and 4 -> 2 (both even) descends by index.
    EXPECT_EQ(p.next_state(sw(2), sw(3), 0), 0);
    EXPECT_EQ(p.next_state(sw(3), sw(2), 0), 1);
    EXPECT_EQ(p.next_state(sw(4), sw(2), 0), 1);
    // Phase 1 only descends: any ascent (2 -> 5 across groups, 3 -> 5
    // within the odd group) is forbidden after the turn.
    EXPECT_EQ(p.next_state(sw(2), sw(5), 1), -1);
    EXPECT_EQ(p.next_state(sw(3), sw(5), 1), -1);
    EXPECT_EQ(p.next_state(sw(5), sw(3), 1), 1);
}

/// Every shipped policy admits some path between any two switches of a
/// full bidirectional clique (the route-set automaton never makes a pair
/// unreachable; feasibility is the cost model's business).
TEST(RoutingPolicy, TwoPhaseDisciplinesAdmitDirectHops) {
    for (RoutingPolicyId id : kAllPolicies) {
        const auto& p = routing::routing_policy(id);
        for (int u = 0; u < 4; ++u)
            for (int v = 0; v < 4; ++v) {
                if (u == v) continue;
                EXPECT_GE(p.next_state(sw(u), sw(v), p.initial_state()), 0)
                    << routing::routing_to_string(id) << " " << u << "->"
                    << v;
            }
    }
}

TEST(RoutingPolicy, ScheduleFlowsIsDecreasingBandwidthStable) {
    CommSpec comm;
    comm.add_flow({0, 1, 100, 0, FlowType::Request});
    comm.add_flow({1, 2, 300, 0, FlowType::Request});
    comm.add_flow({2, 3, 100, 0, FlowType::Request});
    const auto order = routing::routing_policy(RoutingPolicyId::UpDown)
                           .schedule_flows(comm);
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

// --- whole-flow properties on the paper benchmarks ----------------------

CoreAssignment simple_assignment(const DesignSpec& spec) {
    // One switch per layer; enough structure for multi-hop inter-switch
    // routes on every benchmark.
    CoreAssignment assign;
    assign.core_switch.resize(
        static_cast<std::size_t>(spec.cores.num_cores()));
    for (int c = 0; c < spec.cores.num_cores(); ++c)
        assign.core_switch[static_cast<std::size_t>(c)] =
            spec.cores.core(c).layer;
    for (int ly = 0; ly < spec.cores.num_layers(); ++ly)
        assign.switch_layer.push_back(ly);
    return assign;
}

TEST(RoutingPolicy, EveryPolicyRoutesBenchmarksDeadlockFree) {
    for (const auto& name : benchmark_names()) {
        const DesignSpec spec = make_benchmark(name);
        for (RoutingPolicyId id : kAllPolicies) {
            SynthesisConfig cfg;
            cfg.routing = id;
            Topology topo = build_initial_topology(spec,
                                                   simple_assignment(spec));
            compute_paths(topo, spec, cfg);
            // Whatever was routed must pass every baked-path check.
            EXPECT_TRUE(is_routing_deadlock_free(topo))
                << name << " " << routing::routing_to_string(id);
            EXPECT_TRUE(is_message_dependent_deadlock_free(topo, spec.comm))
                << name << " " << routing::routing_to_string(id);
            EXPECT_TRUE(classes_are_separated(topo, spec.comm))
                << name << " " << routing::routing_to_string(id);

            // ... and the *enlarged* adaptive route set must stay acyclic
            // too: the route-set CDG generalizes build_cdg from the baked
            // paths to every admissible path.
            const routing::RouteSets rs = routing::build_route_sets(
                topo, spec, routing::routing_policy(id));
            EXPECT_FALSE(
                has_cycle(routing::build_route_set_cdg(topo, spec, rs)))
                << name << " " << routing::routing_to_string(id);
            EXPECT_FALSE(has_cycle(
                routing::build_extended_route_set_cdg(topo, spec, rs)))
                << name << " " << routing::routing_to_string(id);
        }
    }
}

/// Fully synthesized best design under one policy (bounded switch sweep,
/// no floorplan: fast but realistic multi-switch topologies).
Topology best_topology(const DesignSpec& spec, RoutingPolicyId id) {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 6;
    cfg.routing = id;
    const SynthesisResult res = run_synthesis(spec, cfg);
    const int best = res.best_power_index();
    EXPECT_GE(best, 0) << routing::routing_to_string(id);
    return res.points[static_cast<std::size_t>(best)].topo;
}

TEST(RoutingPolicy, RouteSetContainsBakedPathAndEjectsAtDestination) {
    const DesignSpec spec = make_benchmark("D_36_4");
    for (RoutingPolicyId id : kAllPolicies) {
        const Topology topo = best_topology(spec, id);
        ASSERT_TRUE(topo.all_flows_routed());
        // build_route_sets throws if any baked hop is missing from its
        // own route set; returning normally is the containment proof.
        const routing::RouteSets rs = routing::build_route_sets(
            topo, spec, routing::routing_policy(id));
        for (int f = 0; f < topo.num_flows(); ++f) {
            const auto& path = topo.flow_path(f);
            const int ss = topo.link(path.front()).dst.index;
            const int sd = topo.link(path.back()).src.index;
            EXPECT_EQ(rs.first_link(f), path.front());
            // The source node offers at least the baked first hop.
            EXPECT_FALSE(
                rs.options(f, ss, rs.initial_state()).empty());
            // At the destination switch the only option is ejection.
            for (int s = 0; s < rs.num_states(); ++s)
                for (const routing::RouteOption& o : rs.options(f, sd, s))
                    EXPECT_EQ(o.link, path.back());
        }
    }
}

TEST(RoutingPolicy, PoliciesProduceDifferentPathsSomewhere) {
    // The disciplines are genuinely different route sets: on at least one
    // benchmark the synthesized best topologies must differ in links or
    // flow paths.
    int differing = 0;
    for (const char* name : {"D_26_media", "D_36_4"}) {
        const DesignSpec spec = make_benchmark(name);
        const Topology t1 = best_topology(spec, RoutingPolicyId::UpDown);
        const Topology t2 = best_topology(spec, RoutingPolicyId::WestFirst);
        bool differs = t1.num_links() != t2.num_links() ||
                       t1.num_switches() != t2.num_switches();
        for (int f = 0; !differs && f < t1.num_flows(); ++f)
            differs = t1.flow_path(f) != t2.flow_path(f);
        differing += differs ? 1 : 0;
    }
    EXPECT_GT(differing, 0);
}

TEST(RoutingPolicy, OversubscribedSpecReportsCapacityViolations) {
    // One flow heavier than a physical channel can carry: the path
    // computation routes it (marginal cost stays finite) but must flag
    // the oversubscribed links instead of silently accepting them.
    DesignSpec spec;
    for (int i = 0; i < 2; ++i) {
        Core c;
        c.name = "c" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        spec.cores.add_core(c);
    }
    // 50 GB/s >> the ~1.6 GB/s a 32-bit 400 MHz channel carries.
    spec.comm.add_flow({0, 1, 50000, 0, FlowType::Request});
    CoreAssignment assign;
    assign.core_switch = {0, 1};
    assign.switch_layer = {0, 0};
    SynthesisConfig cfg;
    Topology topo = build_initial_topology(spec, assign);
    const auto res = compute_paths(topo, spec, cfg);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.failed_flows.empty());
    EXPECT_FALSE(res.capacity_violations.empty());
}

}  // namespace
}  // namespace sunfloor
