// Tests for TSV macro generation (Section III).
#include <gtest/gtest.h>

#include "sunfloor/floorplan/tsv_macros.h"

namespace sunfloor {
namespace {

TEST(TsvMacros, IntraLayerLinkNeedsNoMacros) {
    EXPECT_TRUE(tsv_macros_for_link(1, {0, 0}, 1, {3, 3}, 0.01, "l").empty());
}

TEST(TsvMacros, AdjacentLayersOneEmbeddedMacro) {
    const auto m = tsv_macros_for_link(0, {0, 0}, 1, {2, 2}, 0.01, "l");
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].layer, 1);
    EXPECT_TRUE(m[0].embedded);  // lives in the destination port
    EXPECT_DOUBLE_EQ(m[0].area_mm2, 0.01);
    EXPECT_NEAR(m[0].preferred.x, 2.0, 1e-12);
}

TEST(TsvMacros, MultiLayerLinkGetsIntermediateMacros) {
    // Layer 0 to layer 3: macros on layers 1, 2 (free-standing) and 3
    // (embedded), positions interpolated along the span (Fig. 2).
    const auto m = tsv_macros_for_link(0, {0, 0}, 3, {6, 3}, 0.02, "v");
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].layer, 1);
    EXPECT_FALSE(m[0].embedded);
    EXPECT_NEAR(m[0].preferred.x, 2.0, 1e-12);
    EXPECT_NEAR(m[0].preferred.y, 1.0, 1e-12);
    EXPECT_EQ(m[1].layer, 2);
    EXPECT_FALSE(m[1].embedded);
    EXPECT_NEAR(m[1].preferred.x, 4.0, 1e-12);
    EXPECT_EQ(m[2].layer, 3);
    EXPECT_TRUE(m[2].embedded);
    EXPECT_NEAR(m[2].preferred.x, 6.0, 1e-12);
}

TEST(TsvMacros, EndpointOrderIrrelevant) {
    const auto up = tsv_macros_for_link(0, {0, 0}, 2, {4, 0}, 0.01, "a");
    const auto down = tsv_macros_for_link(2, {4, 0}, 0, {0, 0}, 0.01, "a");
    ASSERT_EQ(up.size(), down.size());
    for (std::size_t i = 0; i < up.size(); ++i) {
        EXPECT_EQ(up[i].layer, down[i].layer);
        EXPECT_NEAR(up[i].preferred.x, down[i].preferred.x, 1e-12);
    }
}

TEST(TsvMacros, LabelsIdentifyLayer) {
    const auto m = tsv_macros_for_link(0, {0, 0}, 2, {0, 0}, 0.01, "link7");
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0].label, "link7@L1");
    EXPECT_EQ(m[1].label, "link7@L2");
}

}  // namespace
}  // namespace sunfloor
