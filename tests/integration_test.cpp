// End-to-end integration tests: full synthesis runs on the paper's
// benchmarks with every constraint verified on the outputs, plus the
// headline comparative claims in relaxed form (3-D beats 2-D, custom beats
// mesh, Phase 1 beats Phase 2 on power).
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/noc/mesh.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = false;
    return cfg;
}

void verify_point(const DesignPoint& p, const DesignSpec& spec,
                  const SynthesisConfig& cfg) {
    ASSERT_TRUE(p.report.all_flows_routed);
    EXPECT_LE(p.report.max_ill_used, cfg.max_ill);
    EXPECT_EQ(p.report.latency_violations, 0);
    EXPECT_TRUE(is_routing_deadlock_free(p.topo));
    EXPECT_TRUE(is_message_dependent_deadlock_free(p.topo, spec.comm));
    EXPECT_TRUE(classes_are_separated(p.topo, spec.comm));
    const int max_sw = cfg.eval.lib.max_switch_size(cfg.eval.freq_hz);
    for (int s = 0; s < p.topo.num_switches(); ++s) {
        EXPECT_LE(p.topo.switch_in_degree(s), max_sw);
        EXPECT_LE(p.topo.switch_out_degree(s), max_sw);
    }
    const double cap = cfg.eval.freq_hz *
                       (cfg.eval.lib.params().flit_width_bits / 8.0) * 1e-6;
    for (int l = 0; l < p.topo.num_links(); ++l)
        EXPECT_LE(p.topo.link(l).bw_mbps, cap + 1e-6);
}

class BenchmarkSynthesis : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkSynthesis, Phase1ValidPointsMeetEveryConstraint) {
    const DesignSpec spec = make_benchmark(GetParam());
    SynthesisConfig cfg = fast_cfg();
    // Limit the sweep on the big designs to keep test time reasonable.
    cfg.max_switches = std::min(spec.cores.num_cores(), 14);
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    ASSERT_GT(res.num_valid(), 0) << GetParam();
    for (const auto& p : res.points)
        if (p.valid) verify_point(p, spec, cfg);
}

TEST_P(BenchmarkSynthesis, Phase2ValidPointsMeetEveryConstraint) {
    const DesignSpec spec = make_benchmark(GetParam());
    SynthesisConfig cfg = fast_cfg();
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase2);
    ASSERT_GT(res.num_valid(), 0) << GetParam();
    for (const auto& p : res.points) {
        if (!p.valid) continue;
        verify_point(p, spec, cfg);
        for (int l = 0; l < p.topo.num_links(); ++l)
            EXPECT_LE(p.topo.link_layers_crossed(l), 1);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSynthesis,
                         ::testing::Values("D_26_media", "D_36_4", "D_35_bot",
                                           "D_38_tvopd"));

TEST(Headline, ThreeDBeats2DOnD26Media) {
    const DesignSpec spec3d = make_d26_media();
    const DesignSpec spec2d = to_2d(spec3d);
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 14;
    const auto r3 = Synthesizer(spec3d, cfg).run(SynthesisPhase::Phase1);
    const auto r2 = Synthesizer(spec2d, cfg).run(SynthesisPhase::Phase1);
    const int b3 = r3.best_power_index();
    const int b2 = r2.best_power_index();
    ASSERT_GE(b3, 0);
    ASSERT_GE(b2, 0);
    // The paper reports 24% NoC power saving for this benchmark; require
    // a clear win without pinning the exact figure.
    EXPECT_LT(r3.points[b3].report.power.noc_mw(),
              r2.points[b2].report.power.noc_mw() * 0.95);
    // Latency should not be worse in 3-D.
    EXPECT_LE(r3.points[b3].report.avg_latency_cycles,
              r2.points[b2].report.avg_latency_cycles + 1e-9);
}

TEST(Headline, CustomTopologyBeatsOptimizedMesh) {
    const DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 14;
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    const int bp = res.best_power_index();
    ASSERT_GE(bp, 0);
    Rng rng(7);
    MeshOptions mopts;
    mopts.moves_per_temp = 64;
    const auto mesh = build_mesh_baseline(spec, cfg.eval, rng, mopts);
    ASSERT_TRUE(mesh.ok);
    const auto mesh_rep = evaluate_topology(mesh.topo, spec, cfg.eval);
    // Paper: ~51% average power saving, 21% latency. Require >= 20% power.
    EXPECT_LT(res.points[bp].report.power.noc_mw(),
              mesh_rep.power.noc_mw() * 0.8);
    EXPECT_LT(res.points[bp].report.avg_latency_cycles,
              mesh_rep.avg_latency_cycles);
}

TEST(Headline, Phase1BeatsPhase2OnPower) {
    // Fig. 17: Phase 2's layer-by-layer restriction costs power on designs
    // with heavy inter-layer traffic.
    const DesignSpec spec = make_d36(4);
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 14;
    const auto p1 = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    const auto p2 = Synthesizer(spec, cfg).run(SynthesisPhase::Phase2);
    const int b1 = p1.best_power_index();
    const int b2 = p2.best_power_index();
    ASSERT_GE(b1, 0);
    ASSERT_GE(b2, 0);
    EXPECT_LE(p1.points[b1].report.power.noc_mw(),
              p2.points[b2].report.power.noc_mw() * 1.02);
}

TEST(Headline, TighterIllBudgetCostsPowerOrFails) {
    // Figs. 21/22: shrinking max_ill never improves the best power point.
    const DesignSpec spec = make_d36(4);
    SynthesisConfig loose = fast_cfg();
    loose.max_ill = 24;
    loose.max_switches = 12;
    SynthesisConfig tight = loose;
    tight.max_ill = 12;
    const auto rl = Synthesizer(spec, loose).run(SynthesisPhase::Phase1);
    const auto rt = Synthesizer(spec, tight).run(SynthesisPhase::Phase1);
    const int bl = rl.best_power_index();
    ASSERT_GE(bl, 0);
    if (rt.best_power_index() >= 0) {
        EXPECT_GE(rt.points[rt.best_power_index()].report.power.noc_mw(),
                  rl.points[bl].report.power.noc_mw() * 0.98);
    }
    // Every emitted point respects its own budget.
    for (const auto& p : rt.points)
        if (p.valid) {
            EXPECT_LE(p.report.max_ill_used, tight.max_ill);
        }
}

TEST(Headline, PipelineBenchmarkGainsLeastFrom3D) {
    // Section VIII-C: distributed designs save big, pipelines save little.
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 12;
    auto saving = [&](const DesignSpec& spec3d) {
        const auto r3 = Synthesizer(spec3d, cfg).run(SynthesisPhase::Phase1);
        const auto r2 =
            Synthesizer(to_2d(spec3d), cfg).run(SynthesisPhase::Phase1);
        const int b3 = r3.best_power_index();
        const int b2 = r2.best_power_index();
        if (b3 < 0 || b2 < 0) return 0.0;
        return 1.0 - r3.points[b3].report.power.noc_mw() /
                         r2.points[b2].report.power.noc_mw();
    };
    const double distributed = saving(make_d36(4));
    const double pipeline = saving(make_d65_pipe());
    EXPECT_GT(distributed, pipeline);
}

}  // namespace
}  // namespace sunfloor
