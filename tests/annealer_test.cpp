// Tests for the simulated-annealing floorplanner (Parquet substitute).
#include <gtest/gtest.h>

#include "sunfloor/floorplan/annealer.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

TEST(Annealer, ImprovesAreaOverIdentity) {
    // Mixed sizes: the identity row layout is far from optimal.
    std::vector<BlockDim> dims{{1, 4}, {4, 1}, {1, 4}, {4, 1},
                               {2, 2}, {1, 1}, {1, 1}, {2, 2}};
    double total = 0.0;
    for (const auto& d : dims) total += d.w * d.h;
    const double identity_area = SequencePair(8).pack(dims).area();
    Rng rng(5);
    AnnealOptions opts;
    opts.wirelength_weight = 0.0;
    const auto res = anneal_floorplan(dims, {}, opts, rng);
    EXPECT_LT(res.packing.area(), identity_area);
    EXPECT_GE(res.packing.area(), total - 1e-9);
    // A decent anneal should reach within 40% of the area lower bound.
    EXPECT_LT(res.packing.area(), total * 1.4);
}

TEST(Annealer, WirelengthPullsConnectedBlocksTogether) {
    // 8 unit blocks; blocks 0 and 7 are heavily connected.
    std::vector<BlockDim> dims(8, BlockDim{1, 1});
    std::vector<FloorplanNet> nets{{0, 7, 100.0}};
    AnnealOptions opts;
    opts.wirelength_weight = 0.5;
    Rng rng(6);
    const auto res = anneal_floorplan(dims, nets, opts, rng);
    const Rect r0 = res.packing.block_rect(0, dims);
    const Rect r7 = res.packing.block_rect(7, dims);
    EXPECT_LE(manhattan(r0.center(), r7.center()), 2.5);
}

TEST(Annealer, EmptyAndSingleBlock) {
    Rng rng(7);
    const auto empty = anneal_floorplan({}, {}, {}, rng);
    EXPECT_EQ(empty.packing.positions.size(), 0u);
    const auto single = anneal_floorplan({{2, 3}}, {}, {}, rng);
    EXPECT_DOUBLE_EQ(single.packing.area(), 6.0);
}

TEST(Annealer, ConstrainedModePreservesImmovableOrder) {
    // Blocks 0..3 immovable (a row), block 4 movable. The relative x-order
    // of the immovable blocks must survive any number of moves.
    std::vector<BlockDim> dims{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {0.5, 0.5}};
    std::vector<Rect> initial{{0, 0, 1, 1},
                              {1.5, 0, 1, 1},
                              {3, 0, 1, 1},
                              {4.5, 0, 1, 1},
                              {2, 2, 0.5, 0.5}};
    const auto sp0 = SequencePair::from_placement(initial);
    std::vector<char> movable{0, 0, 0, 0, 1};
    Rng rng(8);
    const auto res = anneal_floorplan(dims, {}, {}, rng, &sp0, &movable);
    for (int i = 0; i + 1 < 4; ++i)
        EXPECT_LT(res.packing.positions[i].x, res.packing.positions[i + 1].x);
}

TEST(Annealer, TargetWeightKeepsBlocksNearTargets) {
    std::vector<BlockDim> dims{{1, 1}, {1, 1}, {1, 1}, {1, 1}};
    std::vector<Point> targets{{0.5, 0.5}, {3.5, 0.5}, {0.5, 3.5}, {3.5, 3.5}};
    AnnealOptions opts;
    opts.target_weight = 50.0;  // dominate area
    Rng rng(9);
    const auto res = anneal_floorplan(dims, {}, opts, rng, nullptr, nullptr,
                                      &targets);
    // With targets at the 4 corners of a 4x4 region, the anneal must
    // spread the blocks rather than pack them (a 2x2 packing at the origin
    // would cost ~12 mm of deviation).
    double dev = 0.0;
    for (int i = 0; i < 4; ++i)
        dev += manhattan(res.packing.block_rect(i, dims).center(),
                         targets[static_cast<std::size_t>(i)]);
    EXPECT_LT(dev, 9.0);
}

TEST(Annealer, FloorplanDesignLayersLegalizes) {
    DesignSpec spec = make_d26_media();
    AnnealOptions opts;
    opts.wirelength_weight = 5e-4;
    Rng rng(10);
    floorplan_design_layers(spec.cores, spec.comm, opts, rng);
    EXPECT_TRUE(spec.cores.placement_is_legal());
    // Area utilization must stay sane (no exploded layout).
    for (int ly = 0; ly < spec.cores.num_layers(); ++ly) {
        const double core_area = spec.cores.layer_area(ly);
        const double bbox = spec.cores.layer_bounding_box(ly).area();
        EXPECT_LT(bbox, core_area * 1.6) << "layer " << ly;
    }
}

TEST(Annealer, CostFunctionComponents) {
    std::vector<BlockDim> dims{{1, 1}, {1, 1}};
    Packing p;
    p.positions = {{0, 0}, {5, 0}};
    p.width = 6;
    p.height = 1;
    AnnealOptions opts;
    opts.area_weight = 1.0;
    opts.wirelength_weight = 2.0;
    const std::vector<FloorplanNet> nets{{0, 1, 3.0}};
    // area 6 + 2 * 3 * 5 = 36.
    EXPECT_DOUBLE_EQ(floorplan_cost(p, dims, nets, opts), 36.0);
    opts.target_weight = 1.0;
    const std::vector<Point> targets{{0.5, 0.5}, {5.5, 0.5}};
    EXPECT_DOUBLE_EQ(floorplan_cost(p, dims, nets, opts, &targets), 36.0);
}

}  // namespace
}  // namespace sunfloor
