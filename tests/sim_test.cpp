// Flit-level simulator: zero-load timing against the analytic model on
// hand-built topologies, wormhole pipelining, contention, backpressure,
// conservation (nothing is ever dropped) and bit-exact determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "sunfloor/noc/evaluation.h"
#include "sunfloor/sim/simulator.h"

namespace sunfloor {
namespace {

using sim::SimParams;
using sim::SimReport;
using sim::Traffic;

Core make_core(const std::string& name, double x, double y, int layer = 0) {
    Core c;
    c.name = name;
    c.width = 1.0;
    c.height = 1.0;
    c.position = {x, y};
    c.layer = layer;
    return c;
}

/// Star: every core attaches to one central switch; each requested flow
/// is routed core -> switch -> core. All geometry is compact, so every
/// link is a single pipeline stage at 400 MHz.
struct StarFixture {
    DesignSpec spec;
    Topology topo{CoreSpec{}, 0};
    EvalParams eval{};

    StarFixture(int num_cores, const std::vector<Flow>& flows) {
        for (int c = 0; c < num_cores; ++c)
            spec.cores.add_core(
                make_core("c" + std::to_string(c), 1.1 * c, 0.0));
        for (const Flow& f : flows) spec.comm.add_flow(f);
        topo = Topology(spec.cores, spec.comm.num_flows());
        const int sw = topo.add_switch("sw0", 0, {0.5, 1.0});
        for (int fi = 0; fi < spec.comm.num_flows(); ++fi) {
            const Flow& f = spec.comm.flow(fi);
            const int in = topo.add_link(NodeRef::core(f.src),
                                         NodeRef::sw(sw), f.type);
            const int out = topo.add_link(NodeRef::sw(sw),
                                          NodeRef::core(f.dst), f.type);
            topo.set_flow_path(fi, f, {in, out});
        }
    }
};

/// 0.25 flits/cycle at 400 MHz with 32-bit flits.
constexpr double kBw = 400.0;

SimParams quick_params() {
    SimParams p;
    p.inject.packet_length_flits = 1;
    p.warmup_cycles = 200;
    p.measure_cycles = 2000;
    return p;
}

TEST(Sim, ZeroLoadMatchesAnalyticOnStar) {
    StarFixture fx(2, {{0, 1, kBw, 0.0, FlowType::Request}});
    SimParams p = quick_params();
    const SimReport rep =
        sim::simulate_zero_load(fx.topo, fx.spec, fx.eval, p);
    ASSERT_EQ(rep.flow_avg_latency_cycles.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.flow_avg_latency_cycles[0],
                     flow_latency(fx.topo, 0, fx.eval));
    EXPECT_DOUBLE_EQ(rep.flow_avg_latency_cycles[0], 1.0);  // 1 switch hop
    EXPECT_TRUE(rep.drained);
    EXPECT_EQ(rep.injected_packets, 1);
    EXPECT_EQ(rep.received_packets, 1);
}

TEST(Sim, ZeroLoadCountsPipelineStagesOnLongLinks) {
    // A 10 mm switch-to-switch wire at 400 MHz needs several pipeline
    // stages; the simulator must charge exactly stages - 1 extra cycles,
    // like the analytic model.
    DesignSpec spec;
    spec.cores.add_core(make_core("a", 0.0, 0.0));
    spec.cores.add_core(make_core("b", 12.0, 0.0));
    Flow f{0, 1, kBw, 0.0, FlowType::Request};
    spec.comm.add_flow(f);
    Topology topo(spec.cores, 1);
    const int s0 = topo.add_switch("s0", 0, {1.0, 0.5});
    const int s1 = topo.add_switch("s1", 0, {11.0, 0.5});
    const int l0 = topo.add_link(NodeRef::core(0), NodeRef::sw(s0));
    const int l1 = topo.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    const int l2 = topo.add_link(NodeRef::sw(s1), NodeRef::core(1));
    topo.set_flow_path(0, f, {l0, l1, l2});

    EvalParams eval;
    ASSERT_GT(eval.wire.pipeline_stages(topo.link_planar_length(l1),
                                        eval.freq_hz),
              1);
    const SimReport rep =
        sim::simulate_zero_load(topo, spec, eval, quick_params());
    EXPECT_DOUBLE_EQ(rep.flow_avg_latency_cycles[0],
                     flow_latency(topo, 0, eval));
}

TEST(Sim, WormholeTailFollowsHeadOneFlitPerCycle) {
    StarFixture fx(2, {{0, 1, kBw, 0.0, FlowType::Request}});
    SimParams p = quick_params();
    p.inject.packet_length_flits = 5;
    p.buffer_depth_flits = 8;
    const SimReport rep =
        sim::simulate_zero_load(fx.topo, fx.spec, fx.eval, p);
    // Head pays the path latency; the tail streams 4 cycles behind.
    EXPECT_DOUBLE_EQ(rep.avg_head_latency_cycles, 1.0);
    EXPECT_DOUBLE_EQ(rep.flow_avg_latency_cycles[0], 5.0);
    EXPECT_EQ(rep.received_flits, 5);
}

TEST(Sim, ConservesAllPacketsUnderLoad) {
    // Four senders into one receiver through one switch: heavy sharing
    // of the ejection link, but credit backpressure must never lose a
    // flit — everything injected is eventually delivered.
    std::vector<Flow> flows;
    for (int s = 0; s < 4; ++s)
        flows.push_back({s, 4, kBw, 0.0, FlowType::Request});
    StarFixture fx(5, flows);
    SimParams p = quick_params();
    p.inject.packet_length_flits = 4;
    p.buffer_depth_flits = 2;  // tight buffers: backpressure is exercised
    const SimReport rep = sim::simulate(fx.topo, fx.spec, fx.eval, p);
    EXPECT_TRUE(rep.drained);
    EXPECT_EQ(rep.in_flight_flits_at_end, 0);
    EXPECT_EQ(rep.received_packets, rep.injected_packets);
    EXPECT_EQ(rep.received_flits, rep.injected_flits);
    EXPECT_GT(rep.injected_packets, 0);
}

TEST(Sim, ContentionRaisesLatencyAboveZeroLoad) {
    // Aggregate demand on the shared ejection link is 4 * 0.25 = 1.0
    // flits/cycle — saturation: queueing is guaranteed, so the measured
    // average must exceed the zero-load 1.0 and p99 must exceed the mean.
    std::vector<Flow> flows;
    for (int s = 0; s < 4; ++s)
        flows.push_back({s, 4, kBw, 0.0, FlowType::Request});
    StarFixture fx(5, flows);
    const SimReport rep =
        sim::simulate(fx.topo, fx.spec, fx.eval, quick_params());
    EXPECT_GT(rep.avg_latency_cycles, 1.0);
    EXPECT_GE(rep.p99_latency_cycles, rep.avg_latency_cycles);
    EXPECT_LE(rep.max_latency_cycles + 1e-9, 1e9);
    // The shared link saturates but never exceeds one flit per cycle.
    double max_util = 0.0;
    for (double u : rep.link_utilization) max_util = std::max(max_util, u);
    EXPECT_LE(max_util, 1.0 + 1e-12);
    EXPECT_GT(max_util, 0.5);
}

TEST(Sim, AcceptedTracksOfferedBelowSaturation) {
    StarFixture fx(3, {{0, 2, kBw, 0.0, FlowType::Request},
                       {1, 2, kBw, 0.0, FlowType::Request}});
    SimParams p = quick_params();
    p.inject.injection_scale = 0.5;  // shared link at 0.25 flits/cycle
    p.measure_cycles = 20000;
    const SimReport rep = sim::simulate(fx.topo, fx.spec, fx.eval, p);
    EXPECT_TRUE(rep.drained);
    EXPECT_NEAR(rep.accepted_flits_per_cycle, rep.offered_flits_per_cycle,
                0.05 * rep.offered_flits_per_cycle);
}

TEST(Sim, DeterministicForEqualSeedsAndSensitiveToSeed) {
    std::vector<Flow> flows;
    for (int s = 0; s < 3; ++s)
        flows.push_back({s, 3, kBw, 0.0, FlowType::Request});
    StarFixture fx(4, flows);
    SimParams p = quick_params();
    p.seed = 7;
    const SimReport a = sim::simulate(fx.topo, fx.spec, fx.eval, p);
    const SimReport b = sim::simulate(fx.topo, fx.spec, fx.eval, p);
    EXPECT_EQ(a.injected_packets, b.injected_packets);
    EXPECT_EQ(a.received_packets, b.received_packets);
    EXPECT_EQ(a.cycles_run, b.cycles_run);
    EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
    EXPECT_DOUBLE_EQ(a.p99_latency_cycles, b.p99_latency_cycles);
    ASSERT_EQ(a.link_utilization.size(), b.link_utilization.size());
    for (std::size_t l = 0; l < a.link_utilization.size(); ++l)
        EXPECT_DOUBLE_EQ(a.link_utilization[l], b.link_utilization[l]);

    SimParams q = p;
    q.seed = 8;
    const SimReport c = sim::simulate(fx.topo, fx.spec, fx.eval, q);
    EXPECT_NE(a.injected_packets, c.injected_packets);
}

TEST(Sim, BurstyKeepsMeanRateButDegradesLatency) {
    std::vector<Flow> flows;
    for (int s = 0; s < 4; ++s)
        flows.push_back({s, 4, kBw, 0.0, FlowType::Request});
    StarFixture fx(5, flows);
    SimParams uni = quick_params();
    uni.inject.injection_scale = 0.6;
    uni.measure_cycles = 30000;
    SimParams bur = uni;
    bur.inject.traffic = Traffic::Bursty;
    const SimReport ru = sim::simulate(fx.topo, fx.spec, fx.eval, uni);
    const SimReport rb = sim::simulate(fx.topo, fx.spec, fx.eval, bur);
    // Same long-run offered load...
    EXPECT_DOUBLE_EQ(ru.offered_flits_per_cycle, rb.offered_flits_per_cycle);
    EXPECT_NEAR(static_cast<double>(rb.injected_packets),
                static_cast<double>(ru.injected_packets),
                0.25 * static_cast<double>(ru.injected_packets));
    // ... but clustered arrivals queue up: the same mean load hurts more.
    EXPECT_GT(rb.avg_latency_cycles, ru.avg_latency_cycles);
}

TEST(Sim, HotspotBoostsRatesIntoTheHotCore) {
    DesignSpec spec;
    for (int c = 0; c < 4; ++c)
        spec.cores.add_core(make_core("c" + std::to_string(c), 1.1 * c, 0.0));
    spec.comm.add_flow({0, 3, kBw, 0.0, FlowType::Request});
    spec.comm.add_flow({1, 3, kBw, 0.0, FlowType::Request});
    spec.comm.add_flow({1, 2, kBw, 0.0, FlowType::Request});
    sim::InjectionParams inj;
    inj.traffic = Traffic::Hotspot;
    inj.packet_length_flits = 1;
    inj.hotspot_factor = 3.0;  // auto hotspot = core 3 (most inbound bw)
    EvalParams eval;
    const auto rates = sim::flow_packet_rates(spec, inj, eval);
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[0], 0.75);  // 0.25 * 3
    EXPECT_DOUBLE_EQ(rates[1], 0.75);
    EXPECT_DOUBLE_EQ(rates[2], 0.25);  // not into the hotspot
}

TEST(Sim, BurstyRateClampIsReportedHonestly) {
    // A flow demanding more than the ON duty cycle (0.2 by default)
    // can only achieve `duty` packets/cycle; the reported rates must be
    // the achievable mean, not the request.
    DesignSpec spec;
    spec.cores.add_core(make_core("a", 0.0, 0.0));
    spec.cores.add_core(make_core("b", 1.1, 0.0));
    spec.comm.add_flow({0, 1, 2 * kBw, 0.0, FlowType::Request});  // 0.5 f/c
    sim::InjectionParams inj;
    inj.traffic = Traffic::Bursty;
    inj.packet_length_flits = 1;
    EvalParams eval;
    sim::InjectionState state(spec, inj, eval);
    EXPECT_DOUBLE_EQ(state.packet_rate(0), 0.2);  // clamped to the duty
    EXPECT_DOUBLE_EQ(state.offered_flits_per_cycle(), 0.2);
    // Below the duty cycle the mean is preserved exactly.
    inj.injection_scale = 0.2;  // 0.1 packets/cycle < duty
    sim::InjectionState low(spec, inj, eval);
    EXPECT_DOUBLE_EQ(low.packet_rate(0), 0.1);
}

TEST(Sim, RejectsUnroutedTopologies) {
    DesignSpec spec;
    spec.cores.add_core(make_core("a", 0.0, 0.0));
    spec.cores.add_core(make_core("b", 1.1, 0.0));
    spec.comm.add_flow({0, 1, kBw, 0.0, FlowType::Request});
    Topology topo(spec.cores, 1);  // no path assigned
    EvalParams eval;
    EXPECT_THROW(sim::simulate(topo, spec, eval, quick_params()),
                 std::invalid_argument);
}

TEST(Sim, RejectsBadParams) {
    StarFixture fx(2, {{0, 1, kBw, 0.0, FlowType::Request}});
    SimParams p = quick_params();
    p.buffer_depth_flits = 0;
    EXPECT_THROW(sim::simulate(fx.topo, fx.spec, fx.eval, p),
                 std::invalid_argument);
    p = quick_params();
    p.inject.packet_length_flits = 0;
    EXPECT_THROW(sim::simulate(fx.topo, fx.spec, fx.eval, p),
                 std::invalid_argument);
    p = quick_params();
    p.measure_cycles = 0;
    EXPECT_THROW(sim::simulate(fx.topo, fx.spec, fx.eval, p),
                 std::invalid_argument);
}

TEST(Sim, TrafficStringsRoundTrip) {
    Traffic t = Traffic::Uniform;
    for (const char* s : {"uniform", "bursty", "hotspot"}) {
        ASSERT_TRUE(sim::traffic_from_string(s, t));
        EXPECT_STREQ(sim::traffic_to_string(t), s);
    }
    EXPECT_FALSE(sim::traffic_from_string("poisson", t));
}

}  // namespace
}  // namespace sunfloor
