// Tests for the benchmark generators: structure as the paper states it.
#include <gtest/gtest.h>

#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

TEST(Benchmarks, AllNamesBuild) {
    for (const auto& name : benchmark_names()) {
        const DesignSpec spec = make_benchmark(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_GT(spec.cores.num_cores(), 0) << name;
        EXPECT_GT(spec.comm.num_flows(), 0) << name;
        EXPECT_TRUE(spec.cores.placement_is_legal()) << name;
    }
    EXPECT_THROW(make_benchmark("nope"), std::invalid_argument);
}

TEST(Benchmarks, CoreCountsMatchPaper) {
    EXPECT_EQ(make_d26_media().cores.num_cores(), 26);
    EXPECT_EQ(make_d36(4).cores.num_cores(), 36);
    EXPECT_EQ(make_d36(6).cores.num_cores(), 36);
    EXPECT_EQ(make_d36(8).cores.num_cores(), 36);
    EXPECT_EQ(make_d35_bot().cores.num_cores(), 35);
    EXPECT_EQ(make_d65_pipe().cores.num_cores(), 65);
    EXPECT_EQ(make_d38_tvopd().cores.num_cores(), 38);
}

TEST(Benchmarks, D26HasThreeLayers) {
    EXPECT_EQ(make_d26_media().cores.num_layers(), 3);
}

TEST(Benchmarks, D36FlowCountsAndConstantBandwidth) {
    // 18 processors x k request flows (plus paired responses); the total
    // request bandwidth is identical across the three variants.
    double total4 = 0.0;
    for (int k : {4, 6, 8}) {
        const DesignSpec spec = make_d36(k);
        int requests = 0;
        double total = 0.0;
        for (const auto& f : spec.comm.flows()) {
            if (f.type == FlowType::Request) {
                ++requests;
                total += f.bw_mbps;
            }
        }
        EXPECT_EQ(requests, 18 * k);
        if (k == 4)
            total4 = total;
        else
            EXPECT_NEAR(total, total4, 1e-6);
    }
    EXPECT_THROW(make_d36(5), std::invalid_argument);
}

TEST(Benchmarks, D36EveryProcessorReachesDistinctMemories) {
    const DesignSpec spec = make_d36(6);
    for (int p = 0; p < 18; ++p) {
        const int pid = spec.cores.find("p" + std::to_string(p));
        std::set<int> dests;
        for (const auto& f : spec.comm.flows())
            if (f.src == pid && f.type == FlowType::Request)
                dests.insert(f.dst);
        EXPECT_EQ(dests.size(), 6u) << "p" << p;
    }
}

TEST(Benchmarks, D35BottleneckStructure) {
    const DesignSpec spec = make_d35_bot();
    // Every processor hits its private memory and all three shared ones.
    for (int i = 0; i < 16; ++i) {
        const int p = spec.cores.find("p" + std::to_string(i));
        const int pm = spec.cores.find("pm" + std::to_string(i));
        ASSERT_GE(p, 0);
        ASSERT_GE(pm, 0);
        bool has_private = false;
        int shared = 0;
        for (const auto& f : spec.comm.flows()) {
            if (f.src != p || f.type != FlowType::Request) continue;
            if (f.dst == pm) has_private = true;
            if (spec.cores.core(f.dst).name.starts_with("sm")) ++shared;
        }
        EXPECT_TRUE(has_private);
        EXPECT_EQ(shared, 3);
    }
}

TEST(Benchmarks, D65IsAPipeline) {
    const DesignSpec spec = make_d65_pipe();
    int request_flows = 0;
    for (const auto& f : spec.comm.flows()) {
        EXPECT_EQ(f.type, FlowType::Request);
        ++request_flows;
    }
    EXPECT_EQ(request_flows, 64);  // c_i -> c_{i+1}
    // Consecutive stages are mostly on the same layer (snake mapping).
    int inter_layer = 0;
    for (const auto& f : spec.comm.flows())
        if (spec.cores.core(f.src).layer != spec.cores.core(f.dst).layer)
            ++inter_layer;
    EXPECT_LE(inter_layer, 4);
}

TEST(Benchmarks, HeavyTrafficCrossesLayersInD36) {
    // The paper maps highly communicating cores above one another; in the
    // memory-on-logic D_36 designs every request flow crosses a boundary.
    const DesignSpec spec = make_d36(4);
    for (const auto& f : spec.comm.flows())
        EXPECT_NE(spec.cores.core(f.src).layer, spec.cores.core(f.dst).layer);
}

TEST(Benchmarks, PerCoreBandwidthFitsLinkCapacity) {
    // 32-bit links at 400 MHz carry 1600 MB/s; no core may aggregate more
    // per direction or its NI link saturates before synthesis starts.
    for (const auto& name : benchmark_names()) {
        const DesignSpec spec = make_benchmark(name);
        std::vector<double> out(spec.cores.num_cores(), 0.0);
        std::vector<double> in(spec.cores.num_cores(), 0.0);
        for (const auto& f : spec.comm.flows()) {
            out[f.src] += f.bw_mbps;
            in[f.dst] += f.bw_mbps;
        }
        for (int c = 0; c < spec.cores.num_cores(); ++c) {
            EXPECT_LE(out[c], 1600.0) << name << " core "
                                      << spec.cores.core(c).name;
            EXPECT_LE(in[c], 1600.0) << name << " core "
                                     << spec.cores.core(c).name;
        }
    }
}

TEST(Benchmarks, RowpackIsDeterministicAndLegal) {
    DesignSpec a = make_d26_media();
    DesignSpec b = make_d26_media();
    for (int c = 0; c < a.cores.num_cores(); ++c) {
        EXPECT_EQ(a.cores.core(c).position, b.cores.core(c).position);
    }
    EXPECT_TRUE(a.cores.placement_is_legal());
}

TEST(Benchmarks, To2dFlattensAndStaysLegal) {
    const DesignSpec spec = make_d35_bot();
    const DesignSpec flat = to_2d(spec);
    EXPECT_EQ(flat.cores.num_layers(), 1);
    EXPECT_EQ(flat.comm.num_flows(), spec.comm.num_flows());
    EXPECT_TRUE(flat.cores.placement_is_legal());
    // 2-D die area should be about the sum of the 3-D layers.
    double area3d = 0.0;
    for (int ly = 0; ly < spec.cores.num_layers(); ++ly)
        area3d += spec.cores.layer_area(ly);
    EXPECT_NEAR(flat.cores.layer_area(0), area3d, 1e-9);
}

}  // namespace
}  // namespace sunfloor
