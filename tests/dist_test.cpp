// Distributed exploration: byte-identity of sharded runs against the
// single-process explorer over {inproc, socket} transports x {1, 2, 4}
// workers x {analytic, sim} backends x {cold, warm} CAS, the associative
// Pareto merge, slice boundaries, the wire codec and fault tolerance
// (retry, worker retirement, typed failures).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sunfloor/dist/coordinator.h"
#include "sunfloor/dist/protocol.h"
#include "sunfloor/dist/shard.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/obs/metrics.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

struct TempDir {
    std::string path;
    TempDir() {
        char buf[] = "/tmp/sunfloor_dist_XXXXXX";
        const char* p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        if (p) path = p;
    }
    ~TempDir() {
        if (!path.empty()) std::system(("rm -rf " + path).c_str());
    }
};

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return cfg;
}

ParamGrid analytic_grid() {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({350e6, 450e6}));
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    return grid;
}

ParamGrid sim_grid() {
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    return grid;
}

ExploreOptions backend_opts(EvalBackend backend) {
    ExploreOptions opts;
    opts.num_threads = 2;
    opts.backend = backend;
    if (backend == EvalBackend::Simulated) {
        opts.sim.warmup_cycles = 200;
        opts.sim.measure_cycles = 1500;
        opts.sim.inject.packet_length_flits = 2;
    }
    return opts;
}

std::string csv_of(const ExploreResult& r) {
    std::ostringstream os;
    explore_table(r).write_csv(os);
    return os.str();
}

/// The JSON export minus the lines that legitimately differ between a
/// single-process run and a merged distributed run: wall-clock timing and
/// the per-stage hit/miss/compute lines (shard sessions are colder than
/// one shared session; the *results* must still match bit for bit).
std::string normalized_json(const ExploreResult& r, const std::string& name) {
    std::ostringstream os;
    write_explore_json(os, r, name);
    std::istringstream is(os.str());
    std::string line, out;
    while (std::getline(is, line)) {
        if (line.find("compute_ms") != std::string::npos ||
            line.find("elapsed_ms") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

long long counter(const char* name) {
    return obs::Registry::global().counter(name).value();
}

/// Throws a Transport DistError for the first `fail_first` run() calls,
/// then behaves like an inproc worker.
class FlakyTransport : public dist::ShardTransport {
  public:
    explicit FlakyTransport(int fail_first) : fails_left_(fail_first) {}

    dist::ShardResponse run(const dist::ShardRequest& req) override {
        if (fails_left_ > 0) {
            --fails_left_;
            throw dist::DistError(dist::DistErrorKind::Transport,
                                  "injected transport failure");
        }
        return inner_.run(req);
    }
    std::string describe() const override { return "flaky"; }

  private:
    int fails_left_;
    dist::InprocTransport inner_;
};

class AlwaysFailTransport : public dist::ShardTransport {
  public:
    dist::ShardResponse run(const dist::ShardRequest&) override {
        throw dist::DistError(dist::DistErrorKind::Transport,
                              "injected permanent failure");
    }
    std::string describe() const override { return "always-fail"; }
};

// ------------------------------------------------------ slice boundaries

TEST(DistBoundaries, ContiguousBalancedAndExhaustive) {
    const std::vector<std::size_t> b = dist::shard_boundaries(10, 3);
    ASSERT_EQ(b, (std::vector<std::size_t>{0, 4, 7, 10}));

    for (const std::size_t n : {0u, 1u, 2u, 5u, 16u, 17u, 100u}) {
        for (const int k : {-1, 0, 1, 2, 3, 7, 200}) {
            const std::vector<std::size_t> bounds =
                dist::shard_boundaries(n, k);
            ASSERT_GE(bounds.size(), 2u);
            EXPECT_EQ(bounds.front(), 0u);
            EXPECT_EQ(bounds.back(), n);
            std::size_t min_len = n + 1, max_len = 0;
            for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
                ASSERT_LE(bounds[s], bounds[s + 1]);
                const std::size_t len = bounds[s + 1] - bounds[s];
                min_len = std::min(min_len, len);
                max_len = std::max(max_len, len);
            }
            if (n > 0) {
                EXPECT_GE(min_len, 1u) << n << "/" << k;  // no empty slices
                EXPECT_LE(max_len - min_len, 1u);         // balanced
                // Never more slices than points, never more than asked.
                EXPECT_LE(bounds.size() - 1, n);
                if (k >= 1)
                    EXPECT_LE(bounds.size() - 1,
                              static_cast<std::size_t>(k));
            }
        }
    }
}

// ------------------------------------------------------------ wire codec

TEST(DistProtocol, HexRoundTripsAndRejectsGarbage) {
    std::string bytes;
    for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
    const std::string hex = dist::to_hex(bytes);
    EXPECT_EQ(hex.size(), 512u);
    std::string back;
    ASSERT_TRUE(dist::from_hex(hex, back));
    EXPECT_EQ(back, bytes);
    EXPECT_FALSE(dist::from_hex("abc", back));   // odd length
    EXPECT_FALSE(dist::from_hex("zz", back));    // non-hex
    ASSERT_TRUE(dist::from_hex("", back));
    EXPECT_TRUE(back.empty());
}

TEST(DistProtocol, ShardRequestRoundTripsCompletely) {
    dist::ShardRequest req;
    req.spec = make_benchmark("D_36_4");
    req.base_cfg = fast_cfg();
    req.base_cfg.eval.freq_hz = 123.456789e6;  // bit-exactness matters
    req.opts = backend_opts(EvalBackend::Simulated);
    req.points = analytic_grid().enumerate();
    req.cas_dir = "/some/cas/dir";
    req.cas_max_bytes = 1234567;

    const std::string payload = dist::encode_shard_request(req);
    dist::ShardRequest out;
    std::string err;
    ASSERT_TRUE(dist::decode_shard_request(payload, out, err)) << err;
    EXPECT_EQ(out.spec.name, req.spec.name);
    EXPECT_EQ(out.spec.cores.num_cores(), req.spec.cores.num_cores());
    ASSERT_EQ(out.points.size(), req.points.size());
    for (std::size_t i = 0; i < out.points.size(); ++i)
        EXPECT_EQ(out.points[i].key(), req.points[i].key());
    EXPECT_EQ(out.cas_dir, req.cas_dir);
    EXPECT_EQ(out.cas_max_bytes, req.cas_max_bytes);
    EXPECT_EQ(out.opts.backend, req.opts.backend);
    EXPECT_EQ(out.opts.sim.measure_cycles, req.opts.sim.measure_cycles);
    const double fa = out.base_cfg.eval.freq_hz;
    const double fb = req.base_cfg.eval.freq_hz;
    EXPECT_EQ(std::memcmp(&fa, &fb, sizeof(double)), 0);
    // Re-encoding the decoded request reproduces the payload byte for
    // byte — the same fixed-point property the CAS codec holds.
    EXPECT_EQ(dist::encode_shard_request(out), payload);

    // A tampered version word (first payload byte) is a clean decode
    // error, not a misread.
    std::string wrong = payload;
    wrong[0] = static_cast<char>(wrong[0] ^ 0x7f);
    EXPECT_FALSE(dist::decode_shard_request(wrong, out, err));
    // Truncations too.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{3}, payload.size() / 2,
          payload.size() - 1})
        EXPECT_FALSE(
            dist::decode_shard_request(payload.substr(0, cut), out, err));
}

TEST(DistProtocol, FramesParseBothDirections) {
    std::string err;
    dist::WorkerRequest wreq;
    ASSERT_TRUE(dist::parse_worker_frame(dist::make_ping_frame(), wreq, err));
    EXPECT_EQ(wreq.op, dist::WorkerRequest::Op::Ping);

    std::string payload;
    ASSERT_TRUE(
        dist::parse_response_frame(dist::make_pong_frame(), payload, err));
    EXPECT_TRUE(payload.empty());

    EXPECT_FALSE(dist::parse_response_frame(
        dist::make_error_frame("worker exploded"), payload, err));
    EXPECT_NE(err.find("worker exploded"), std::string::npos);

    EXPECT_FALSE(dist::parse_worker_frame("not json", wreq, err));
    EXPECT_FALSE(dist::parse_response_frame("not json", payload, err));
}

// ----------------------------------------------------------- Pareto merge

TEST(DistMerge, SliceFrontMergeEqualsGlobalPareto) {
    // Duplicate axis values on purpose: slicings that separate duplicate
    // keys are exactly where a naive merge (dedup against the confirmed
    // front instead of all seen keys) would diverge.
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({350e6, 450e6}));
    grid.set_axis(ParamAxis::max_tsvs({25, 25, 15}));
    grid.set_axis(ParamAxis::thetas({4.0}));

    for (const EvalBackend backend :
         {EvalBackend::Analytic, EvalBackend::Simulated}) {
        const Explorer explorer(spec, fast_cfg(), backend_opts(backend));
        const ExploreResult res = explorer.run(grid);
        const bool measured = backend == EvalBackend::Simulated;
        const std::vector<ParetoEntry> want =
            measured ? global_pareto_measured(res.points)
                     : global_pareto(res.points);
        ASSERT_GT(want.size(), 0u);

        for (const int shards : {1, 2, 3, 5, 6}) {
            const std::vector<std::size_t> bounds =
                dist::shard_boundaries(res.points.size(), shards);
            std::vector<std::vector<ParetoEntry>> fronts;
            for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
                const std::vector<ExplorePointResult> slice(
                    res.points.begin() +
                        static_cast<std::ptrdiff_t>(bounds[s]),
                    res.points.begin() +
                        static_cast<std::ptrdiff_t>(bounds[s + 1]));
                std::vector<ParetoEntry> front =
                    measured ? global_pareto_measured(slice)
                             : global_pareto(slice);
                for (ParetoEntry& e : front)
                    e.point_index += static_cast<int>(bounds[s]);
                fronts.push_back(std::move(front));
            }
            const std::vector<ParetoEntry> got =
                merge_pareto_fronts(res.points, fronts, measured);
            ASSERT_EQ(got.size(), want.size()) << "shards=" << shards;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].point_index, want[i].point_index);
                EXPECT_EQ(got[i].design_index, want[i].design_index);
            }
        }
    }
}

// ------------------------------------------------- byte-identity property

void run_identity_matrix(EvalBackend backend, const ParamGrid& grid) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const ExploreOptions opts = backend_opts(backend);
    const std::vector<GridPoint> points = grid.enumerate();

    const ExploreResult ref = Explorer(spec, cfg, opts).run(grid);
    const std::string ref_csv = csv_of(ref);
    const std::string ref_json = normalized_json(ref, spec.name);

    // One socket worker serves every socket transport below (transports
    // dial per job, so N coordinator-side transports against one server is
    // N workers' worth of concurrency).
    TempDir sock_dir;
    dist::WorkerOptions wopts;
    wopts.listen = sock_dir.path + "/worker.sock";
    wopts.conn_threads = 4;
    dist::WorkerServer server(wopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    for (const int workers : {1, 2, 4}) {
        for (const bool socket : {false, true}) {
            TempDir cas_dir;
            std::vector<std::shared_ptr<dist::ShardTransport>> transports;
            for (int w = 0; w < workers; ++w) {
                if (socket)
                    transports.push_back(
                        std::make_shared<dist::SocketTransport>(
                            wopts.listen));
                else
                    transports.push_back(
                        std::make_shared<dist::InprocTransport>());
            }
            dist::DistOptions dopts;
            dopts.shards = 3;
            dopts.cas_dir = cas_dir.path;

            const std::string label =
                std::string(socket ? "socket" : "inproc") + " x " +
                std::to_string(workers);

            // Cold store.
            const ExploreResult cold = dist::distribute_explore(
                spec, cfg, opts, points, transports, dopts);
            EXPECT_EQ(csv_of(cold), ref_csv) << label << " cold";
            EXPECT_EQ(normalized_json(cold, spec.name), ref_json)
                << label << " cold";

            // Warm store: same directory, every artifact already spilled.
            const long long hits = counter("cas.hits");
            const ExploreResult warm = dist::distribute_explore(
                spec, cfg, opts, points, transports, dopts);
            EXPECT_EQ(csv_of(warm), ref_csv) << label << " warm";
            EXPECT_EQ(normalized_json(warm, spec.name), ref_json)
                << label << " warm";
            EXPECT_GT(counter("cas.hits"), hits) << label << " warm";
        }
    }

    // And entirely without a store.
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<dist::InprocTransport>(),
        std::make_shared<dist::InprocTransport>(),
    };
    dist::DistOptions dopts;
    dopts.shards = 3;
    const ExploreResult plain =
        dist::distribute_explore(spec, cfg, opts, points, transports, dopts);
    EXPECT_EQ(csv_of(plain), ref_csv);
    EXPECT_EQ(normalized_json(plain, spec.name), ref_json);

    server.request_shutdown();
    server.wait();
}

TEST(Dist, ShardedAnalyticExploreIsByteIdenticalToSingleProcess) {
    run_identity_matrix(EvalBackend::Analytic, analytic_grid());
}

TEST(Dist, ShardedSimulatedExploreIsByteIdenticalToSingleProcess) {
    run_identity_matrix(EvalBackend::Simulated, sim_grid());
}

TEST(Dist, MoreShardsThanPointsAndOddCountsStayExact) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const ExploreOptions opts = backend_opts(EvalBackend::Analytic);
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({15, 20, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    const ExploreResult ref = Explorer(spec, cfg, opts).run(grid);

    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<dist::InprocTransport>(),
        std::make_shared<dist::InprocTransport>(),
    };
    for (const int shards : {1, 2, 3, 7}) {
        dist::DistOptions dopts;
        dopts.shards = shards;
        const ExploreResult got = dist::distribute_explore(
            spec, cfg, opts, grid.enumerate(), transports, dopts);
        EXPECT_EQ(csv_of(got), csv_of(ref)) << "shards=" << shards;
        EXPECT_EQ(normalized_json(got, spec.name),
                  normalized_json(ref, spec.name))
            << "shards=" << shards;
    }
}

TEST(Dist, EmptyPointListYieldsAnEmptyResult) {
    const DesignSpec spec = make_benchmark("D_36_4");
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<dist::InprocTransport>()};
    const ExploreResult got = dist::distribute_explore(
        spec, fast_cfg(), backend_opts(EvalBackend::Analytic), {},
        transports, dist::DistOptions{});
    EXPECT_TRUE(got.points.empty());
    EXPECT_TRUE(got.pareto.empty());
    EXPECT_EQ(got.stats.total_points, 0);
}

// --------------------------------------------------------- fault handling

TEST(DistFaults, FlakyTransportIsRetriedToAnExactResult) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const ExploreOptions opts = backend_opts(EvalBackend::Analytic);
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    const ExploreResult ref = Explorer(spec, cfg, opts).run(grid);

    // The only worker fails twice (below the retirement threshold), then
    // recovers; with max_retries=2 the job survives both failures.
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<FlakyTransport>(2)};
    dist::DistOptions dopts;
    dopts.shards = 1;
    dopts.max_retries = 2;
    const long long retried = counter("dist.jobs.retried");
    const ExploreResult got = dist::distribute_explore(
        spec, cfg, opts, grid.enumerate(), transports, dopts);
    EXPECT_EQ(csv_of(got), csv_of(ref));
    EXPECT_EQ(counter("dist.jobs.retried"), retried + 2);
}

TEST(DistFaults, MixedHealthyAndDeadWorkersStillFinishExactly) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const ExploreOptions opts = backend_opts(EvalBackend::Analytic);
    const ParamGrid grid = analytic_grid();
    const ExploreResult ref = Explorer(spec, cfg, opts).run(grid);

    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<AlwaysFailTransport>(),
        std::make_shared<dist::InprocTransport>(),
    };
    dist::DistOptions dopts;
    dopts.shards = 4;
    dopts.max_retries = 16;  // failures re-queue onto the healthy worker
    const ExploreResult got = dist::distribute_explore(
        spec, cfg, opts, grid.enumerate(), transports, dopts);
    EXPECT_EQ(csv_of(got), csv_of(ref));
}

TEST(DistFaults, RetriesExceededThrowsTheLastErrorKind) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<AlwaysFailTransport>()};
    dist::DistOptions dopts;
    dopts.max_retries = 1;
    try {
        dist::distribute_explore(spec, fast_cfg(),
                                 backend_opts(EvalBackend::Analytic),
                                 grid.enumerate(), transports, dopts);
        FAIL() << "expected DistError";
    } catch (const dist::DistError& e) {
        EXPECT_EQ(e.kind(), dist::DistErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
    }
}

TEST(DistFaults, AllWorkersRetiredThrowsWorkerLost) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<AlwaysFailTransport>()};
    dist::DistOptions dopts;
    dopts.max_retries = 100;  // retirement bites before the retry budget
    const long long retired = counter("dist.workers.retired");
    try {
        dist::distribute_explore(spec, fast_cfg(),
                                 backend_opts(EvalBackend::Analytic),
                                 grid.enumerate(), transports, dopts);
        FAIL() << "expected DistError";
    } catch (const dist::DistError& e) {
        EXPECT_EQ(e.kind(), dist::DistErrorKind::WorkerLost);
    }
    EXPECT_EQ(counter("dist.workers.retired"), retired + 1);
}

TEST(DistFaults, ConfigErrorsAreTyped) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));
    const ExploreOptions opts = backend_opts(EvalBackend::Analytic);
    try {
        dist::distribute_explore(spec, fast_cfg(), opts, grid.enumerate(),
                                 {}, dist::DistOptions{});
        FAIL() << "expected DistError";
    } catch (const dist::DistError& e) {
        EXPECT_EQ(e.kind(), dist::DistErrorKind::Config);
    }
    std::vector<std::shared_ptr<dist::ShardTransport>> with_null = {nullptr};
    try {
        dist::distribute_explore(spec, fast_cfg(), opts, grid.enumerate(),
                                 with_null, dist::DistOptions{});
        FAIL() << "expected DistError";
    } catch (const dist::DistError& e) {
        EXPECT_EQ(e.kind(), dist::DistErrorKind::Config);
    }
}

TEST(DistFaults, UnreachableSocketWorkerFailsAsTransport) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));
    std::vector<std::shared_ptr<dist::ShardTransport>> transports = {
        std::make_shared<dist::SocketTransport>(
            "/nonexistent/sunfloor/worker.sock")};
    dist::DistOptions dopts;
    dopts.max_retries = 0;
    try {
        dist::distribute_explore(spec, fast_cfg(),
                                 backend_opts(EvalBackend::Analytic),
                                 grid.enumerate(), transports, dopts);
        FAIL() << "expected DistError";
    } catch (const dist::DistError& e) {
        EXPECT_EQ(e.kind(), dist::DistErrorKind::Transport);
    }
}

}  // namespace
}  // namespace sunfloor
