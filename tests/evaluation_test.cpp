// Tests for the topology evaluator: power split, latency convention, TSVs.
#include <gtest/gtest.h>

#include "sunfloor/noc/evaluation.h"

namespace sunfloor {
namespace {

// c0 --- sw0(L0) --- sw1(L1) --- c1, c0 on layer 0 at (0,0), c1 on layer 1.
struct Fixture {
    DesignSpec spec;
    Topology topo{CoreSpec{}, 0};
    EvalParams params;

    Fixture() {
        Core a;
        a.name = "c0";
        a.width = 1;
        a.height = 1;
        a.layer = 0;
        a.position = {0, 0};
        Core b;
        b.name = "c1";
        b.width = 1;
        b.height = 1;
        b.layer = 1;
        b.position = {4, 0};
        spec.cores.add_core(a);
        spec.cores.add_core(b);
        spec.comm.add_flow({0, 1, 400, 0, FlowType::Request});
        topo = Topology(spec.cores, spec.comm.num_flows());
        const int s0 = topo.add_switch("s0", 0, {1.5, 0.5});
        const int s1 = topo.add_switch("s1", 1, {3.5, 0.5});
        const int l0 = topo.add_link(NodeRef::core(0), NodeRef::sw(s0));
        const int l1 = topo.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
        const int l2 = topo.add_link(NodeRef::sw(s1), NodeRef::core(1));
        topo.set_flow_path(0, spec.comm.flow(0), {l0, l1, l2});
    }
};

TEST(Evaluation, PowerSplitsAreSensible) {
    Fixture f;
    const auto rep = evaluate_topology(f.topo, f.spec, f.params);
    EXPECT_TRUE(rep.all_flows_routed);
    EXPECT_GT(rep.power.switch_mw, 0.0);
    EXPECT_GT(rep.power.c2s_link_mw, 0.0);
    EXPECT_GT(rep.power.s2s_link_mw, 0.0);
    EXPECT_GT(rep.power.ni_mw, 0.0);
    EXPECT_NEAR(rep.power.total_mw(),
                rep.power.switch_mw + rep.power.link_mw() + rep.power.ni_mw,
                1e-12);
    EXPECT_NEAR(rep.power.noc_mw(),
                rep.power.switch_mw + rep.power.link_mw(), 1e-12);
}

TEST(Evaluation, LatencyConvention) {
    // Two switches, short links -> zero-load latency exactly 2 cycles.
    Fixture f;
    const auto rep = evaluate_topology(f.topo, f.spec, f.params);
    EXPECT_DOUBLE_EQ(rep.flow_latency_cycles[0], 2.0);
    EXPECT_DOUBLE_EQ(rep.avg_latency_cycles, 2.0);
    EXPECT_EQ(rep.latency_violations, 0);
}

TEST(Evaluation, SingleSwitchPathHasLatencyOne) {
    // The Section VIII-A observation: cores on different layers attached
    // to the same switch still see a one-cycle zero-load latency.
    DesignSpec spec;
    Core a;
    a.name = "a";
    a.width = 1;
    a.height = 1;
    a.layer = 0;
    Core b;
    b.name = "b";
    b.width = 1;
    b.height = 1;
    b.layer = 1;
    spec.cores.add_core(a);
    spec.cores.add_core(b);
    spec.comm.add_flow({0, 1, 100, 0, FlowType::Request});
    Topology t(spec.cores, 1);
    const int s = t.add_switch("s", 0, {0.5, 0.5});
    const int l0 = t.add_link(NodeRef::core(0), NodeRef::sw(s));
    const int l1 = t.add_link(NodeRef::sw(s), NodeRef::core(1));
    t.set_flow_path(0, spec.comm.flow(0), {l0, l1});
    EvalParams p;
    EXPECT_DOUBLE_EQ(flow_latency(t, 0, p), 1.0);
}

TEST(Evaluation, LongLinksAddPipelineStages) {
    Fixture f;
    // Stretch the switch apart so the s2s link needs extra stages.
    f.topo.switch_at(1).position = {30.0, 0.5};
    const auto rep = evaluate_topology(f.topo, f.spec, f.params);
    EXPECT_GT(rep.flow_latency_cycles[0], 2.0);
}

TEST(Evaluation, LatencyViolationCounted) {
    Fixture f;
    // Tighten the flow's constraint below the achievable 2 cycles.
    DesignSpec tight = f.spec;
    tight.comm = CommSpec{};
    tight.comm.add_flow({0, 1, 400, 1.0, FlowType::Request});
    const auto rep = evaluate_topology(f.topo, tight, f.params);
    EXPECT_EQ(rep.latency_violations, 1);
}

TEST(Evaluation, TsvAccounting) {
    Fixture f;
    const auto rep = evaluate_topology(f.topo, f.spec, f.params);
    // Two links cross the 0-1 boundary? Only the s2s link and the s2c
    // link... s1 is on layer 1, c1 on layer 1: only s0->s1 crosses.
    EXPECT_EQ(rep.max_ill_used, 1);
    EXPECT_EQ(rep.total_tsvs,
              f.params.tsv.tsvs_per_link(f.params.lib.params().flit_width_bits));
    EXPECT_GT(rep.tsv_macro_area_mm2, 0.0);
}

TEST(Evaluation, UnusedSwitchIgnored) {
    Fixture f;
    f.topo.add_switch("orphan", 0, {0, 0});
    const auto with_orphan = evaluate_topology(f.topo, f.spec, f.params);
    Fixture g;
    const auto base = evaluate_topology(g.topo, g.spec, g.params);
    EXPECT_NEAR(with_orphan.power.switch_mw, base.power.switch_mw, 1e-12);
    EXPECT_NEAR(with_orphan.switch_area_mm2, base.switch_area_mm2, 1e-12);
}

TEST(Evaluation, WireLengthsReported) {
    Fixture f;
    const auto rep = evaluate_topology(f.topo, f.spec, f.params);
    EXPECT_EQ(rep.wire_lengths_mm.size(), 3u);  // one per link
    for (double len : rep.wire_lengths_mm) EXPECT_GE(len, 0.0);
}

TEST(Evaluation, MorePowerAtHigherFrequency) {
    Fixture f;
    EvalParams slow = f.params;
    slow.freq_hz = 200e6;
    EvalParams fast = f.params;
    fast.freq_hz = 800e6;
    const auto a = evaluate_topology(f.topo, f.spec, slow);
    const auto b = evaluate_topology(f.topo, f.spec, fast);
    EXPECT_LT(a.power.switch_mw, b.power.switch_mw);
}

}  // namespace
}  // namespace sunfloor
