// Engine-equivalence properties of the CSR/SoA simulator, driven by
// generated specs (specgen) instead of the five paper benchmarks, so
// the invariants are exercised on structurally diverse topologies:
//
//  * bit-exact determinism of repeated runs,
//  * a warmed (reused) Simulator replays a cold one bit-identically —
//    the contract that lets the CLI rate sweep, the throughput bench
//    and the explorer share one engine across runs,
//  * flit conservation: a drained run delivered every measured flit,
//  * accepted throughput never exceeds offered,
//  * the network drains even when driven far past saturation.
//
// Swept over the three traffic models and the three routing policies.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/routing/policy.h"
#include "sunfloor/sim/simulator.h"
#include "sunfloor/specgen/specgen.h"

namespace sunfloor {
namespace {

using routing::RoutingPolicyId;
using sim::SimParams;
using sim::SimReport;
using sim::Traffic;

constexpr RoutingPolicyId kPolicies[] = {RoutingPolicyId::UpDown,
                                         RoutingPolicyId::WestFirst,
                                         RoutingPolicyId::OddEven};
constexpr Traffic kTraffics[] = {Traffic::Uniform, Traffic::Bursty,
                                 Traffic::Hotspot};

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Every field of the report that summarizes the run, compared bit for
/// bit (two identical engine executions must agree on all of them).
void expect_reports_identical(const SimReport& a, const SimReport& b) {
    EXPECT_EQ(a.injected_packets, b.injected_packets);
    EXPECT_EQ(a.received_packets, b.received_packets);
    EXPECT_EQ(a.injected_flits, b.injected_flits);
    EXPECT_EQ(a.received_flits, b.received_flits);
    EXPECT_TRUE(bitwise_equal(a.avg_latency_cycles, b.avg_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.p99_latency_cycles, b.p99_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.max_latency_cycles, b.max_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.avg_head_latency_cycles,
                              b.avg_head_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.accepted_flits_per_cycle,
                              b.accepted_flits_per_cycle));
    ASSERT_EQ(a.flow_avg_latency_cycles.size(),
              b.flow_avg_latency_cycles.size());
    for (std::size_t f = 0; f < a.flow_avg_latency_cycles.size(); ++f)
        EXPECT_TRUE(bitwise_equal(a.flow_avg_latency_cycles[f],
                                  b.flow_avg_latency_cycles[f]));
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.cycles_run, b.cycles_run);
}

/// One generated spec per family, synthesized under `policy`.
struct Synthesized {
    DesignSpec spec;
    SynthesisConfig cfg;
    DesignPoint point{Topology{CoreSpec{}, 0}};
};

Synthesized synthesize(specgen::GenFamily family, RoutingPolicyId policy) {
    specgen::GenParams gp;
    gp.family = family;
    gp.num_cores = 12;  // small: nine (family x policy) syntheses below
    Synthesized s;
    s.spec = specgen::generate(gp, 17);
    s.cfg.run_floorplan = false;
    s.cfg.routing = policy;
    const SynthesisResult res = run_synthesis(s.spec, s.cfg);
    const int best = res.best_power_index();
    EXPECT_GE(best, 0) << specgen::family_to_string(family);
    s.point = res.points[static_cast<std::size_t>(best)];
    return s;
}

SimParams base_params(RoutingPolicyId policy) {
    SimParams p;
    p.routing = policy;
    p.inject.injection_scale = 0.8;
    p.warmup_cycles = 500;
    p.measure_cycles = 3000;
    return p;
}

TEST(SimEquivalence, WarmSimulatorReplaysColdRunsBitIdentically) {
    for (auto family :
         {specgen::GenFamily::Pipeline, specgen::GenFamily::HubAndSpoke,
          specgen::GenFamily::LayeredDag}) {
        for (RoutingPolicyId policy : kPolicies) {
            const Synthesized s = synthesize(family, policy);
            const SimParams p = base_params(policy);
            // Cold: fresh index and engine per call.
            const SimReport cold =
                sim::simulate(s.point.topo, s.spec, s.cfg.eval, p);
            const SimReport cold2 =
                sim::simulate(s.point.topo, s.spec, s.cfg.eval, p);
            expect_reports_identical(cold, cold2);
            // Warm: one Simulator, three runs over the same arenas. The
            // second and third must not remember the first.
            sim::Simulator warm(s.point.topo, s.spec, s.cfg.eval, policy);
            expect_reports_identical(cold,
                                     warm.run(s.spec, s.cfg.eval, p));
            expect_reports_identical(cold,
                                     warm.run(s.spec, s.cfg.eval, p));
            SimParams stressed = p;
            stressed.inject.injection_scale = 1.5;
            warm.run(s.spec, s.cfg.eval, stressed);  // perturb the arenas
            expect_reports_identical(cold,
                                     warm.run(s.spec, s.cfg.eval, p));
        }
    }
}

TEST(SimEquivalence, WarmZeroLoadMatchesColdZeroLoad) {
    const Synthesized s =
        synthesize(specgen::GenFamily::LayeredDag, RoutingPolicyId::UpDown);
    for (RoutingPolicyId policy : kPolicies) {
        SimParams p;
        p.routing = policy;
        const SimReport cold =
            sim::simulate_zero_load(s.point.topo, s.spec, s.cfg.eval, p);
        sim::Simulator warm(s.point.topo, s.spec, s.cfg.eval, policy);
        warm.run(s.spec, s.cfg.eval, base_params(policy));  // dirty it
        expect_reports_identical(cold, warm.run_zero_load(p));
    }
}

TEST(SimEquivalence, DrainedRunsConserveMeasuredFlits) {
    for (auto family :
         {specgen::GenFamily::Pipeline, specgen::GenFamily::HubAndSpoke}) {
        const Synthesized s = synthesize(family, RoutingPolicyId::UpDown);
        sim::Simulator warm(s.point.topo, s.spec, s.cfg.eval,
                            RoutingPolicyId::UpDown);
        for (Traffic t : kTraffics) {
            SimParams p = base_params(RoutingPolicyId::UpDown);
            p.inject.traffic = t;
            const SimReport rep = warm.run(s.spec, s.cfg.eval, p);
            ASSERT_TRUE(rep.drained) << sim::traffic_to_string(t);
            EXPECT_EQ(rep.in_flight_flits_at_end, 0);
            // Drained means every measured flit was delivered — the
            // engine never drops or duplicates a flit.
            EXPECT_EQ(rep.received_flits, rep.injected_flits)
                << sim::traffic_to_string(t);
            EXPECT_EQ(rep.received_packets, rep.injected_packets);
        }
    }
}

TEST(SimEquivalence, AcceptedThroughputNeverExceedsOffered) {
    const Synthesized s =
        synthesize(specgen::GenFamily::HubAndSpoke, RoutingPolicyId::UpDown);
    sim::Simulator warm(s.point.topo, s.spec, s.cfg.eval,
                        RoutingPolicyId::UpDown);
    for (Traffic t : kTraffics) {
        for (double rate : {0.5, 1.5}) {
            SimParams p = base_params(RoutingPolicyId::UpDown);
            p.inject.traffic = t;
            p.inject.injection_scale = rate;
            p.warmup_cycles = 0;  // measure from cycle 0: no stored
                                  // backlog can inflate the window
            const SimReport rep = warm.run(s.spec, s.cfg.eval, p);
            EXPECT_GT(rep.accepted_flits_per_cycle, 0.0);
            // 1.05: the offered rate is a mean; a finite window can run
            // slightly hot before backpressure binds.
            EXPECT_LE(rep.accepted_flits_per_cycle,
                      rep.offered_flits_per_cycle * 1.05)
                << sim::traffic_to_string(t) << " rate " << rate;
        }
    }
}

TEST(SimEquivalence, DrainsUnderStress) {
    // Far past saturation with minimal buffering: deep injection queues
    // build up, yet once injection stops the network must empty (the
    // drain bound is the runtime face of the deadlock-freedom proof).
    for (RoutingPolicyId policy : kPolicies) {
        const Synthesized s =
            synthesize(specgen::GenFamily::Pipeline, policy);
        SimParams p = base_params(policy);
        p.inject.injection_scale = 1.5;
        p.buffer_depth_flits = 1;
        p.measure_cycles = 2000;
        const SimReport rep =
            sim::simulate(s.point.topo, s.spec, s.cfg.eval, p);
        EXPECT_TRUE(rep.drained)
            << routing::routing_to_string(policy);
        EXPECT_EQ(rep.in_flight_flits_at_end, 0);
    }
}

}  // namespace
}  // namespace sunfloor
