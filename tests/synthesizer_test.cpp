// Tests for the top-level synthesis driver: Phase 1, Phase 2, design-point
// bookkeeping and Pareto filtering.
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = false;  // topology-level checks only
    return cfg;
}

TEST(Synthesizer, Phase1ProducesValidPointsOnQuickstartScale) {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 10;
    Rng rng(cfg.seed);
    const auto points = run_phase1(spec, cfg, rng);
    EXPECT_EQ(points.size(), 10u);
    int valid = 0;
    for (const auto& p : points)

        valid += p.valid;
    EXPECT_GT(valid, 3);
    // Switch counts 1 and 2 cannot run at 400 MHz (max switch size ~12
    // with 26 cores), exactly as in Fig. 10/11 where plots start at 3.
    EXPECT_FALSE(points[0].valid);
    EXPECT_FALSE(points[1].valid);
}

TEST(Synthesizer, ValidPointsMeetAllConstraints) {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 8;
    Rng rng(cfg.seed);
    const auto points = run_phase1(spec, cfg, rng);
    const int max_sw = cfg.eval.lib.max_switch_size(cfg.eval.freq_hz);
    for (const auto& p : points) {
        if (!p.valid) continue;
        EXPECT_TRUE(p.report.all_flows_routed);
        EXPECT_LE(p.report.max_ill_used, cfg.max_ill);
        EXPECT_EQ(p.report.latency_violations, 0);
        for (int s = 0; s < p.topo.num_switches(); ++s) {
            EXPECT_LE(p.topo.switch_in_degree(s), max_sw);
            EXPECT_LE(p.topo.switch_out_degree(s), max_sw);
        }
    }
}

TEST(Synthesizer, Phase2RestrictsToAdjacentLayersAndSameLayerCores) {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    Rng rng(cfg.seed);
    const auto points = run_phase2(spec, cfg, rng);
    ASSERT_FALSE(points.empty());
    for (const auto& p : points) {
        if (!p.valid) continue;
        for (int l = 0; l < p.topo.num_links(); ++l) {
            EXPECT_LE(p.topo.link_layers_crossed(l), 1);
            const auto& lk = p.topo.link(l);
            // Core links stay within a layer (Phase 2 rule).
            if (lk.src.is_core() || lk.dst.is_core()) {
                EXPECT_EQ(p.topo.link_layers_crossed(l), 0);
            }
        }
    }
}

TEST(Synthesizer, AutoFallsBackToPhase2) {
    // An impossible Phase 1 budget (0 inter-layer links) on a multi-layer
    // design with inter-layer traffic forces... actually nothing routes.
    // Use a single-layer design instead: Phase 1 succeeds, no fallback.
    DesignSpec spec = to_2d(make_d38_tvopd());
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 6;
    Synthesizer synth(spec, cfg);
    const auto res = synth.run(SynthesisPhase::Auto);
    EXPECT_EQ(res.phase_used, "phase1");
    EXPECT_GT(res.num_valid(), 0);
}

TEST(Synthesizer, ThetaSweepRescuesTightIllBudget) {
    // D_26_media with a tight max_ill: plain PG partitions blow the budget
    // for some switch counts; the SPG theta sweep must rescue at least
    // some of them.
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_ill = 12;
    cfg.max_switches = 12;
    Rng rng(cfg.seed);
    const auto points = run_phase1(spec, cfg, rng);
    int rescued = 0;
    for (const auto& p : points)
        if (p.valid && p.theta > 0.0) ++rescued;
    EXPECT_GT(rescued, 0);
}

TEST(Synthesizer, DesignPointHelpers) {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 8;
    Synthesizer synth(spec, cfg);
    const auto res = synth.run(SynthesisPhase::Phase1);
    const int bp = res.best_power_index();
    const int bl = res.best_latency_index();
    ASSERT_GE(bp, 0);
    ASSERT_GE(bl, 0);
    for (const auto& p : res.points) {
        if (!p.valid) continue;
        EXPECT_GE(p.report.power.total_mw(),
                  res.points[bp].report.power.total_mw() - 1e-9);
        EXPECT_GE(p.report.avg_latency_cycles,
                  res.points[bl].report.avg_latency_cycles - 1e-9);
    }
    // The pareto front contains the best-power and best-latency points.
    const auto front = res.pareto_indices();
    EXPECT_FALSE(front.empty());
}

TEST(Synthesizer, DeterministicAcrossRuns) {
    DesignSpec spec = make_d38_tvopd();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 6;
    const auto a = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    const auto b = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].valid, b.points[i].valid);
        if (a.points[i].valid) {
            EXPECT_DOUBLE_EQ(a.points[i].report.power.total_mw(),
                             b.points[i].report.power.total_mw());
        }
    }
}

TEST(Synthesizer, ParetoFrontFiltersDominatedPoints) {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 12;
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    const auto front = res.pareto_indices();
    for (int i : front) {
        const auto& a = res.points[i];
        for (int j : front) {
            if (i == j) continue;
            const auto& b = res.points[j];
            const bool dominates =
                b.report.power.total_mw() < a.report.power.total_mw() &&
                b.report.avg_latency_cycles < a.report.avg_latency_cycles &&
                b.report.noc_area_mm2() < a.report.noc_area_mm2();
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(Synthesizer, FloorplanRunUpdatesAreas) {
    DesignSpec spec = make_d38_tvopd();
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = true;
    cfg.max_switches = 6;
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    for (const auto& p : res.points) {
        if (!p.valid) continue;
        EXPECT_EQ(p.layer_die_area_mm2.size(),
                  static_cast<std::size_t>(spec.cores.num_layers()));
        EXPECT_GT(p.total_die_area_mm2(), 0.0);
    }
}

}  // namespace
}  // namespace sunfloor
