// Unit tests for the digraph container and graph algorithms.
#include <gtest/gtest.h>

#include "sunfloor/graph/algorithms.h"
#include "sunfloor/graph/digraph.h"
#include "sunfloor/util/rng.h"

namespace sunfloor {
namespace {

TEST(Digraph, AddVerticesAndEdges) {
    Digraph g(3);
    EXPECT_EQ(g.num_vertices(), 3);
    EXPECT_EQ(g.add_vertex(), 3);
    const int e = g.add_edge(0, 3, 2.5);
    EXPECT_EQ(g.edge(e).src, 0);
    EXPECT_EQ(g.edge(e).dst, 3);
    EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
    EXPECT_EQ(g.out_degree(0), 1);
    EXPECT_EQ(g.in_degree(3), 1);
    EXPECT_THROW(g.add_edge(0, 99), std::out_of_range);
}

TEST(Digraph, MergeEdgeAccumulates) {
    Digraph g(2);
    g.merge_edge(0, 1, 1.0);
    g.merge_edge(0, 1, 2.0);
    EXPECT_EQ(g.num_edges(), 1);
    EXPECT_DOUBLE_EQ(g.edge(0).weight, 3.0);
    g.add_edge(0, 1, 5.0);  // explicit parallel edge allowed
    EXPECT_EQ(g.num_edges(), 2);
}

TEST(Digraph, FindEdgeAndTotalWeight) {
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    EXPECT_TRUE(g.find_edge(0, 1).has_value());
    EXPECT_FALSE(g.find_edge(1, 0).has_value());
    EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(Digraph, ReversedAndUndirected) {
    Digraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 0, 2.0);
    g.add_edge(1, 2, 4.0);
    const Digraph r = g.reversed();
    EXPECT_TRUE(r.find_edge(1, 0).has_value());
    EXPECT_TRUE(r.find_edge(2, 1).has_value());
    const Digraph u = g.undirected();
    EXPECT_EQ(u.num_edges(), 2);  // (0,1) merged, (1,2)
    EXPECT_DOUBLE_EQ(u.edge(*u.find_edge(0, 1)).weight, 3.0);
}

TEST(Dijkstra, ShortestPathBasic) {
    Digraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 5.0);
    g.add_edge(2, 3, 1.0);
    const auto sp = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
    EXPECT_DOUBLE_EQ(sp.dist[3], 3.0);
    const auto path = sp.path_to(g, 3);
    EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
    const auto epath = sp.edge_path_to(g, 3);
    ASSERT_EQ(epath.size(), 3u);
    EXPECT_EQ(g.edge(epath[0]).src, 0);
    EXPECT_EQ(g.edge(epath[2]).dst, 3);
}

TEST(Dijkstra, UnreachableAndInfEdges) {
    Digraph g(3);
    g.add_edge(0, 1, kInfCost);  // hard-forbidden edge is skipped
    const auto sp = dijkstra(g, 0);
    EXPECT_EQ(sp.dist[1], kInfCost);
    EXPECT_TRUE(sp.path_to(g, 1).empty());
}

TEST(Dijkstra, NegativeWeightRejected) {
    Digraph g(2);
    g.add_edge(0, 1, -1.0);
    EXPECT_THROW(dijkstra(g, 0), std::invalid_argument);
}

TEST(Dijkstra, MatchesBruteForceOnRandomGraphs) {
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 8;
        Digraph g(n);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                if (i != j && rng.next_bool(0.4))
                    g.add_edge(i, j, 1.0 + rng.next_double() * 9.0);
        const auto sp = dijkstra(g, 0);
        // Bellman-Ford as oracle.
        std::vector<double> dist(n, kInfCost);
        dist[0] = 0.0;
        for (int it = 0; it < n; ++it)
            for (const auto& e : g.edges())
                if (dist[e.src] != kInfCost &&
                    dist[e.src] + e.weight < dist[e.dst])
                    dist[e.dst] = dist[e.src] + e.weight;
        for (int v = 0; v < n; ++v) {
            if (dist[v] == kInfCost)
                EXPECT_EQ(sp.dist[v], kInfCost) << "vertex " << v;
            else
                EXPECT_NEAR(sp.dist[v], dist[v], 1e-9) << "vertex " << v;
        }
    }
}

TEST(Cycles, DetectsCycle) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_FALSE(has_cycle(g));
    g.add_edge(2, 0);
    EXPECT_TRUE(has_cycle(g));
}

TEST(Cycles, SelfLoopIsCycle) {
    Digraph g(2);
    g.add_edge(0, 0);
    EXPECT_TRUE(has_cycle(g));
}

TEST(Topological, OrderRespectsEdges) {
    Digraph g(4);
    g.add_edge(3, 1);
    g.add_edge(1, 0);
    g.add_edge(3, 2);
    const auto order = topological_order(g);
    ASSERT_TRUE(order.has_value());
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i) pos[(*order)[i]] = i;
    for (const auto& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(Topological, CyclicReturnsNullopt) {
    Digraph g(2);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    EXPECT_FALSE(topological_order(g).has_value());
}

TEST(Components, WeakComponents) {
    Digraph g(5);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const auto [comp, n] = weak_components(g);
    EXPECT_EQ(n, 3);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[2], comp[3]);
    EXPECT_NE(comp[0], comp[2]);
    EXPECT_NE(comp[4], comp[0]);
}

TEST(Reachability, AllReachable) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_TRUE(all_reachable(g, 0, {1, 2}));
    EXPECT_FALSE(all_reachable(g, 0, {3}));
    EXPECT_FALSE(all_reachable(g, 2, {0}));  // direction matters
}

TEST(UnionFindT, UniteAndFind) {
    UnionFind uf(5);
    EXPECT_EQ(uf.num_sets(), 5);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_EQ(uf.num_sets(), 3);
    EXPECT_EQ(uf.find(0), uf.find(1));
    EXPECT_NE(uf.find(0), uf.find(4));
}

}  // namespace
}  // namespace sunfloor
