// Exploration engine: determinism across thread counts, cache accounting,
// Pareto merge and exporters.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

/// Cheap but real synthesis setup: no floorplan legalization and a capped
/// switch-count sweep.
SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return cfg;
}

ParamGrid small_grid() {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({350e6, 450e6}));
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    return grid;
}

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bit-exact equality of the synthesis outcomes and the merged Pareto
/// front (but not of provenance flags like cache_hit, which legitimately
/// differ between cold and warm runs).
void expect_same_results(const ExploreResult& a, const ExploreResult& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const auto& pa = a.points[i];
        const auto& pb = b.points[i];
        EXPECT_EQ(pa.point.key(), pb.point.key());
        EXPECT_EQ(pa.seed, pb.seed);
        EXPECT_EQ(pa.result.phase_used, pb.result.phase_used);
        ASSERT_EQ(pa.result.points.size(), pb.result.points.size());
        for (std::size_t d = 0; d < pa.result.points.size(); ++d) {
            const auto& da = pa.result.points[d];
            const auto& db = pb.result.points[d];
            EXPECT_EQ(da.valid, db.valid);
            EXPECT_EQ(da.switch_count, db.switch_count);
            EXPECT_EQ(da.fail_reason, db.fail_reason);
            EXPECT_TRUE(bitwise_equal(da.report.power.total_mw(),
                                      db.report.power.total_mw()));
            EXPECT_TRUE(bitwise_equal(da.report.avg_latency_cycles,
                                      db.report.avg_latency_cycles));
            EXPECT_TRUE(bitwise_equal(da.report.noc_area_mm2(),
                                      db.report.noc_area_mm2()));
        }
    }
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].point_index, b.pareto[i].point_index);
        EXPECT_EQ(a.pareto[i].design_index, b.pareto[i].design_index);
    }
}

/// expect_same_results plus byte-identical exported artifacts (the CSV
/// carries no timing or thread-count information, so two runs with the
/// same cache behaviour must serialize identically).
void expect_identical(const ExploreResult& a, const ExploreResult& b) {
    expect_same_results(a, b);
    std::ostringstream ca, cb;
    explore_table(a).write_csv(ca);
    explore_table(b).write_csv(cb);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(Explorer, ParallelRunsBitIdenticalToSerial) {
    for (const char* name : {"D_36_4", "D_35_bot"}) {
        const DesignSpec spec = make_benchmark(name);
        const ParamGrid grid = small_grid();

        ExploreOptions serial;
        serial.num_threads = 1;
        const ExploreResult ref = Explorer(spec, fast_cfg(), serial).run(grid);
        EXPECT_EQ(ref.stats.num_threads, 1);
        EXPECT_GT(ref.stats.valid_designs, 0) << name;

        for (int threads : {2, 4, 8}) {
            ExploreOptions par;
            par.num_threads = threads;
            const ExploreResult got =
                Explorer(spec, fast_cfg(), par).run(grid);
            expect_identical(ref, got);
        }
    }
}

TEST(Explorer, SeedChangesResultsDeterministically) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));

    ExploreOptions a;
    a.base_seed = 1;
    ExploreOptions b;
    b.base_seed = 2;
    const ExploreResult ra1 = Explorer(spec, fast_cfg(), a).run(grid);
    const ExploreResult ra2 = Explorer(spec, fast_cfg(), a).run(grid);
    const ExploreResult rb = Explorer(spec, fast_cfg(), b).run(grid);
    expect_identical(ra1, ra2);
    EXPECT_NE(ra1.points[0].seed, rb.points[0].seed);
}

TEST(Explorer, DuplicateAxisValuesHitTheCache) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({25, 25, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));

    const Explorer explorer(spec, fast_cfg());
    const ExploreResult res = explorer.run(grid);
    EXPECT_EQ(res.stats.total_points, 3);
    EXPECT_EQ(res.stats.evaluated_points, 1);
    EXPECT_EQ(res.stats.cache_hits, 2);
    EXPECT_FALSE(res.points[0].cache_hit);
    EXPECT_TRUE(res.points[1].cache_hit);
    EXPECT_TRUE(res.points[2].cache_hit);
    // Duplicates carry the evaluated result.
    EXPECT_EQ(res.points[1].result.points.size(),
              res.points[0].result.points.size());
    EXPECT_EQ(explorer.cache_size(), 1u);

    // Duplicate points must not inflate the global front with tied
    // copies: the front only references the first occurrence.
    ParamGrid single;
    single.set_axis(ParamAxis::thetas({4.0}));
    const ExploreResult one = explorer.run(single);
    EXPECT_EQ(res.pareto.size(), one.pareto.size());
    for (const auto& e : res.pareto) EXPECT_EQ(e.point_index, 0);
    EXPECT_EQ(res.points[1].pareto_survivors, 0);
    // Dominance stats count unique architectures, not the copies.
    EXPECT_EQ(res.stats.valid_designs, 3 * res.stats.unique_valid_designs);
    EXPECT_EQ(res.stats.dominated_designs,
              res.stats.unique_valid_designs - res.stats.pareto_size);
}

TEST(Explorer, CachePersistsAcrossRuns) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));

    const Explorer explorer(spec, fast_cfg());
    const ExploreResult first = explorer.run(grid);
    EXPECT_EQ(first.stats.evaluated_points, 1);
    EXPECT_EQ(first.stats.cache_hits, 0);

    const ExploreResult second = explorer.run(grid);
    EXPECT_EQ(second.stats.evaluated_points, 0);
    EXPECT_EQ(second.stats.cache_hits, 1);
    EXPECT_TRUE(second.points[0].cache_hit);
    expect_same_results(first, second);
}

TEST(Explorer, NoCacheEvaluatesEverything) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({25, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));

    ExploreOptions opts;
    opts.use_cache = false;
    const Explorer explorer(spec, fast_cfg(), opts);
    const ExploreResult res = explorer.run(grid);
    EXPECT_EQ(res.stats.evaluated_points, 2);
    EXPECT_EQ(res.stats.cache_hits, 0);
    EXPECT_EQ(explorer.cache_size(), 0u);
    // The two independent evaluations of the identical architectural
    // point must agree bit for bit — the seed comes from the point key,
    // not from the cache or the worker.
    EXPECT_EQ(res.points[0].seed, res.points[1].seed);
    const auto& r0 = res.points[0].result;
    const auto& r1 = res.points[1].result;
    EXPECT_EQ(r0.phase_used, r1.phase_used);
    ASSERT_EQ(r0.points.size(), r1.points.size());
    for (std::size_t d = 0; d < r0.points.size(); ++d) {
        EXPECT_EQ(r0.points[d].valid, r1.points[d].valid);
        EXPECT_TRUE(bitwise_equal(r0.points[d].report.power.total_mw(),
                                  r1.points[d].report.power.total_mw()));
        EXPECT_TRUE(
            bitwise_equal(r0.points[d].report.avg_latency_cycles,
                          r1.points[d].report.avg_latency_cycles));
    }
}

TEST(Explorer, StatsAndDominanceAreConsistent) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const Explorer explorer(spec, fast_cfg());
    const ExploreResult res = explorer.run(small_grid());

    const auto& st = res.stats;
    EXPECT_EQ(st.total_points, 4);
    EXPECT_EQ(st.evaluated_points + st.cache_hits, st.total_points);
    EXPECT_GE(st.total_designs, st.valid_designs);
    EXPECT_EQ(st.unique_valid_designs, st.valid_designs);  // no duplicates
    EXPECT_EQ(st.pareto_size, static_cast<int>(res.pareto.size()));
    EXPECT_EQ(st.dominated_designs, st.valid_designs - st.pareto_size);
    EXPECT_GT(st.pareto_size, 0);

    int survivors = 0;
    for (const auto& pr : res.points) survivors += pr.pareto_survivors;
    EXPECT_EQ(survivors, st.pareto_size);
    for (const auto& e : res.pareto) EXPECT_TRUE(res.design(e).valid);

    const ParetoEntry bp = res.best_power();
    ASSERT_GE(bp.point_index, 0);
    for (const auto& e : res.pareto)
        EXPECT_LE(res.design(bp).report.power.total_mw(),
                  res.design(e).report.power.total_mw());
}

TEST(Explorer, GlobalParetoDominatesAcrossPoints) {
    // A point with a generous TSV budget can dominate a tight-budget
    // point's designs; the global front must filter across points, so it
    // is no larger than the sum of the per-point fronts.
    const DesignSpec spec = make_benchmark("D_36_4");
    const Explorer explorer(spec, fast_cfg());
    const ExploreResult res = explorer.run(small_grid());
    int per_point_front = 0;
    for (const auto& pr : res.points)
        per_point_front +=
            static_cast<int>(pr.result.pareto_indices().size());
    EXPECT_LE(static_cast<int>(res.pareto.size()), per_point_front);
}

TEST(ExploreExport, TableHasOneRowPerDesign) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const Explorer explorer(spec, fast_cfg());
    const ExploreResult res = explorer.run(small_grid());

    const Table t = explore_table(res);
    EXPECT_EQ(t.num_rows(), static_cast<std::size_t>(res.stats.total_designs));
    EXPECT_EQ(t.num_cols(), 17u);
    std::ostringstream os;
    t.write_csv(os);
    EXPECT_NE(os.str().find("freq_mhz"), std::string::npos);
}

TEST(ExploreExport, JsonIsWellFormedEnoughToGrep) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const Explorer explorer(spec, fast_cfg());
    const ExploreResult res = explorer.run(small_grid());

    std::ostringstream os;
    write_explore_json(os, res, spec.name);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"design\": \"D_36_4\""), std::string::npos);
    EXPECT_NE(json.find("\"total_points\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"pareto\""), std::string::npos);
    // Balanced braces and brackets.
    int braces = 0;
    int brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(ExploreExport, JsonQuoteEscapes) {
    EXPECT_EQ(json_quote("plain"), "\"plain\"");
    EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
}

TEST(ExploreSeed, MixesBaseAndKey) {
    const std::uint64_t s1 = explore_point_seed(1, "k");
    const std::uint64_t s2 = explore_point_seed(2, "k");
    const std::uint64_t s3 = explore_point_seed(1, "k2");
    EXPECT_NE(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_EQ(s1, explore_point_seed(1, "k"));
}

}  // namespace
}  // namespace sunfloor
