// Pins every sunfloor_lint rule on the purpose-built fixtures under
// tests/fixtures/lint/ (each fixture documents the lines its findings
// land on), the suppression mechanics, the JSON report shape, and the
// CLI exit codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "sunfloor/lint/lint.h"
#include "sunfloor/obs/trace.h"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

using sunfloor::lint::Finding;
using sunfloor::lint::SourceFile;
using sunfloor::lint::run_lint;

/// Load a fixture; the engine sees the fixture-relative path, so the
/// subdirectory (obs/, spec/, util/) drives the path-scoped rules
/// exactly as the real tree layout would.
SourceFile fixture(const std::string& rel) {
    const std::string full = std::string(SUNFLOOR_LINT_FIXTURES) + "/" + rel;
    std::ifstream in(full, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << full;
    std::ostringstream ss;
    ss << in.rdbuf();
    return {rel, ss.str()};
}

std::vector<Finding> lint_one(const std::string& rel) {
    return run_lint({fixture(rel)});
}

bool has_finding(const std::vector<Finding>& fs, const std::string& path,
                 int line, const std::string& rule) {
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.path == path && f.line == line && f.rule == rule;
    });
}

TEST(LintTest, NondetRulesFireOnExactLines) {
    const auto fs = lint_one("bad/nondet.cpp");
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 9, "nondet-pow"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 10, "nondet-pow"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 11, "nondet-rand"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 12, "nondet-rand"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 13, "nondet-rand"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 14, "nondet-time"));
    EXPECT_TRUE(has_finding(fs, "bad/nondet.cpp", 15, "nondet-time"));
    EXPECT_EQ(fs.size(), 7u);  // nothing beyond the pinned lines
}

TEST(LintTest, CommentsAndStringsAreMasked) {
    EXPECT_TRUE(lint_one("good/masked.cpp").empty());
}

TEST(LintTest, ObsPathsExemptFromNondetTime) {
    EXPECT_TRUE(lint_one("obs/clock.cpp").empty());
}

TEST(LintTest, FloatFormatPinsSpecsInPinnedPaths) {
    const auto fs = lint_one("spec/writer.cpp");
    for (int line : {9, 10, 11, 12})
        EXPECT_TRUE(has_finding(fs, "spec/writer.cpp", line, "float-format"))
            << "line " << line;
    EXPECT_EQ(fs.size(), 4u);  // %.6g, %.17g, %% and %d all pass
}

TEST(LintTest, FloatFormatIgnoresUnpinnedPaths) {
    EXPECT_TRUE(lint_one("good/report.cpp").empty());
}

TEST(LintTest, UnorderedIterationInWriterFile) {
    const auto fs = lint_one("bad/export_iter.cpp");
    EXPECT_TRUE(has_finding(fs, "bad/export_iter.cpp", 12,
                            "unordered-iter-export"));
    EXPECT_TRUE(has_finding(fs, "bad/export_iter.cpp", 14,
                            "unordered-iter-export"));
    EXPECT_EQ(fs.size(), 2u);  // the sorted-copy loop passes
}

TEST(LintTest, UnorderedIterationFineWithoutWriter) {
    EXPECT_TRUE(lint_one("good/iter.cpp").empty());
}

TEST(LintTest, RawMutexOutsideUtil) {
    const auto fs = lint_one("bad/locks.cpp");
    EXPECT_TRUE(has_finding(fs, "bad/locks.cpp", 6, "raw-mutex"));
    EXPECT_TRUE(has_finding(fs, "bad/locks.cpp", 7, "raw-mutex"));
    EXPECT_TRUE(has_finding(fs, "bad/locks.cpp", 10, "raw-mutex"));
    EXPECT_EQ(fs.size(), 4u);  // lock_guard AND its mutex argument on 10
}

TEST(LintTest, RawMutexExemptInUtil) {
    EXPECT_TRUE(lint_one("util/locks.cpp").empty());
}

TEST(LintTest, EnumCoverageIsCrossFile) {
    const auto fs = run_lint(
        {fixture("bad/enums.h"), fixture("bad/enums_table.cpp")});
    ASSERT_EQ(fs.size(), 1u);  // Shape's table (with alias) is complete
    EXPECT_EQ(fs[0].path, "bad/enums_table.cpp");
    EXPECT_EQ(fs[0].line, 17);
    EXPECT_EQ(fs[0].rule, "enum-name-coverage");
    EXPECT_NE(fs[0].message.find("kBlue"), std::string::npos);
}

TEST(LintTest, SuppressionMechanics) {
    const auto fs = lint_one("bad/suppressed.cpp");
    // Reasoned same-line and above-line suppressions silence lines 6/10.
    EXPECT_FALSE(has_finding(fs, "bad/suppressed.cpp", 6, "nondet-pow"));
    EXPECT_FALSE(has_finding(fs, "bad/suppressed.cpp", 10, "nondet-pow"));
    // A reasonless suppression silences nothing and is itself flagged.
    EXPECT_TRUE(
        has_finding(fs, "bad/suppressed.cpp", 14, "suppression-syntax"));
    EXPECT_TRUE(has_finding(fs, "bad/suppressed.cpp", 15, "nondet-rand"));
    // Naming the wrong rule does not suppress.
    EXPECT_TRUE(has_finding(fs, "bad/suppressed.cpp", 18, "nondet-pow"));
    EXPECT_EQ(fs.size(), 3u);
}

TEST(LintTest, RuleIdsAreComplete) {
    const auto ids = sunfloor::lint::rule_ids();
    EXPECT_EQ(ids.size(), 8u);
    for (const char* want :
         {"nondet-pow", "nondet-rand", "nondet-time", "float-format",
          "unordered-iter-export", "raw-mutex", "enum-name-coverage",
          "suppression-syntax"})
        EXPECT_TRUE(std::any_of(ids.begin(), ids.end(), [&](const char* id) {
            return std::string_view(id) == want;
        })) << want;
}

TEST(LintTest, TextReportFormat) {
    std::ostringstream os;
    sunfloor::lint::write_text(
        os, {{"a/b.cpp", 7, "nondet-pow", "banned pow()"}});
    EXPECT_EQ(os.str(), "a/b.cpp:7: [nondet-pow] banned pow()\n");
}

TEST(LintTest, FindingsAreSortedByPathLineRule) {
    const auto fs = run_lint({fixture("bad/nondet.cpp"),
                              fixture("bad/locks.cpp"),
                              fixture("spec/writer.cpp")});
    ASSERT_GT(fs.size(), 1u);
    for (std::size_t i = 1; i < fs.size(); ++i) {
        const auto key = [](const Finding& f) {
            return std::tie(f.path, f.line, f.rule);
        };
        EXPECT_TRUE(key(fs[i - 1]) <= key(fs[i])) << "index " << i;
    }
}

TEST(LintTest, JsonReportValidates) {
    const auto fs = run_lint({fixture("bad/nondet.cpp"),
                              fixture("bad/suppressed.cpp"),
                              fixture("spec/writer.cpp")});
    ASSERT_FALSE(fs.empty());
    const std::string json = sunfloor::lint::to_json(fs);
    std::string error;
    EXPECT_TRUE(sunfloor::obs::validate_json(json, &error)) << error;
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"count\": "), std::string::npos);
    // Empty reports are valid JSON too.
    const std::string empty = sunfloor::lint::to_json({});
    EXPECT_TRUE(sunfloor::obs::validate_json(empty, &error)) << error;
    EXPECT_NE(empty.find("\"count\": 0"), std::string::npos);
}

#ifndef _WIN32

int run_cli(const std::string& args) {
    const std::string cmd =
        std::string(SUNFLOOR_LINT_BIN) + " " + args + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(LintTest, CliExitCodes) {
    const std::string fx = SUNFLOOR_LINT_FIXTURES;
    EXPECT_EQ(run_cli("--list-rules"), 0);
    // Findings without --error-on-findings: reported, exit 0.
    EXPECT_EQ(run_cli(fx + "/bad/nondet.cpp"), 0);
    // CI mode: findings make the run fail.
    EXPECT_EQ(run_cli("--error-on-findings " + fx + "/bad/nondet.cpp"), 1);
    EXPECT_EQ(run_cli("--error-on-findings --format json " + fx +
                      "/bad/nondet.cpp"),
              1);
    // Clean input stays 0 even in CI mode.
    EXPECT_EQ(run_cli("--error-on-findings " + fx + "/good/masked.cpp"), 0);
    // Usage and I/O errors are 2, not 1.
    EXPECT_EQ(run_cli("--no-such-flag " + fx), 2);
    EXPECT_EQ(run_cli("--format yaml " + fx), 2);
    EXPECT_EQ(run_cli(fx + "/does-not-exist.cpp"), 2);
    EXPECT_EQ(run_cli(""), 2);  // no inputs
}

#endif  // !_WIN32

}  // namespace
