// Pins the thread-safety capability analysis (util/annotations.h +
// util/mutex.h) by invoking the configured compiler at test time:
//
//   * fixtures/annotations/good.cpp (correct discipline) must pass
//     `-fsyntax-only -Werror=thread-safety`,
//   * fixtures/annotations/bad.cpp (guarded read without the lock,
//     REQUIRES call without the capability) must FAIL it — the
//     negative test that proves the analysis is wired up rather than
//     silently compiled out,
//   * representative migrated sources (thread_pool, metrics) must pass
//     the same flags, pinning the tree-wide zero-warning state CI
//     enforces with SUNFLOOR_WERROR_THREAD_SAFETY=ON.
//
// The analysis is clang-only (the SF_* macros expand to nothing
// elsewhere), so under other compilers every case GTEST_SKIPs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

bool compiler_is_clang() {
    return std::string_view(SUNFLOOR_CXX_COMPILER_ID).find("Clang") !=
           std::string_view::npos;
}

/// Exit status of `<CXX> -std=c++20 -fsyntax-only -Werror=thread-safety`
/// on `rel` (repo-relative), or -1 when the compiler could not run.
int syntax_check(const std::string& rel) {
#ifdef _WIN32
    return -1;
#else
    const std::string src = std::string(SUNFLOOR_SOURCE_DIR) + "/" + rel;
    const std::string cmd = std::string(SUNFLOOR_CXX_COMPILER) +
                            " -std=c++20 -fsyntax-only" +
                            " -Wthread-safety -Werror=thread-safety -I " +
                            SUNFLOOR_SOURCE_DIR + "/src " + src +
                            " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
#endif
}

TEST(AnnotationsCompileTest, GoodDisciplineCompiles) {
    if (!compiler_is_clang())
        GTEST_SKIP() << "thread-safety analysis is clang-only (compiler: "
                     << SUNFLOOR_CXX_COMPILER_ID << ")";
    EXPECT_EQ(syntax_check("tests/fixtures/annotations/good.cpp"), 0);
}

TEST(AnnotationsCompileTest, BadDisciplineFailsToCompile) {
    if (!compiler_is_clang())
        GTEST_SKIP() << "thread-safety analysis is clang-only (compiler: "
                     << SUNFLOOR_CXX_COMPILER_ID << ")";
    // A known-bad snippet must be REJECTED: this is what proves the
    // annotations are load-bearing.
    const int rc = syntax_check("tests/fixtures/annotations/bad.cpp");
    EXPECT_GT(rc, 0) << "bad.cpp compiled clean: the thread-safety "
                        "analysis is not actually running";
}

TEST(AnnotationsCompileTest, MigratedSourcesStayWarningFree) {
    if (!compiler_is_clang())
        GTEST_SKIP() << "thread-safety analysis is clang-only (compiler: "
                     << SUNFLOOR_CXX_COMPILER_ID << ")";
    for (const char* rel : {"src/sunfloor/util/thread_pool.cpp",
                            "src/sunfloor/obs/metrics.cpp"})
        EXPECT_EQ(syntax_check(rel), 0) << rel;
}

}  // namespace
