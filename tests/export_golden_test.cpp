// Golden-file regression tests for the exploration exporters: the CSV
// and JSON documents of a hand-built ExploreResult are pinned byte for
// byte, so column order, escaping and float formatting cannot drift
// silently. If a change here is intentional, update the golden strings
// *and* the format documentation in explore/export.h.
//
// The RoutingPolicy redesign added a `routing` CSV column and `routing` /
// `capacity_violations` JSON point fields; the ModuloAddedFields tests
// prove the default-policy documents are still byte-identical to the
// pre-redesign goldens once those additions are stripped back out.
#include <gtest/gtest.h>

#include <sstream>

#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"

namespace sunfloor {
namespace {

/// A fully deterministic two-design result: one valid design on the
/// front, one failed design whose fail_reason needs CSV quoting.
ExploreResult golden_result(bool with_sim) {
    CoreSpec cores;
    Core a;
    a.name = "a";
    a.position = {0.0, 0.0};
    Core b = a;
    b.name = "b";
    b.position = {1.5, 0.0};
    cores.add_core(a);
    cores.add_core(b);

    Topology topo(cores, 1);
    topo.add_switch("sw0", 0, {0.75, 0.5});

    DesignPoint valid(topo);
    valid.phase = "phase1";
    valid.switch_count = 3;
    valid.theta = 4.0;
    valid.valid = true;
    valid.report.power.switch_mw = 10.5;
    valid.report.power.s2s_link_mw = 1.25;
    valid.report.power.c2s_link_mw = 0.75;
    valid.report.power.ni_mw = 0.5;
    valid.report.avg_latency_cycles = 2.125;
    valid.report.switch_area_mm2 = 0.5;
    valid.report.ni_area_mm2 = 0.25;
    valid.report.tsv_macro_area_mm2 = 0.0625;
    valid.report.total_tsvs = 12;

    DesignPoint failed(topo);
    failed.phase = "phase1";
    failed.switch_count = 4;
    failed.valid = false;
    failed.fail_reason = "routing failed, \"req\" class";
    failed.capacity_violations = 2;

    ExplorePointResult pr;
    pr.point.index = 0;
    pr.point.freq_hz = 400e6;
    pr.point.max_tsvs = 25;
    pr.point.link_width_bits = 32;
    pr.point.phase = SynthesisPhase::Auto;
    pr.point.theta = 4.0;
    pr.result.points.push_back(valid);
    pr.result.points.push_back(failed);
    pr.result.phase_used = "phase1";
    pr.seed = 1;
    pr.cache_hit = false;
    pr.pareto_survivors = 1;
    if (with_sim) {
        pr.sim_reports.resize(2);
        auto& sr = pr.sim_reports[0];
        sr.avg_latency_cycles = 3.25;
        sr.p99_latency_cycles = 7.5;
        sr.accepted_flits_per_cycle = 0.515625;
        sr.cycles_run = 1000;  // marks the design as simulated
    }

    ExploreResult res;
    res.points.push_back(std::move(pr));
    res.pareto.push_back({0, 0});
    res.stats.total_points = 1;
    res.stats.evaluated_points = 1;
    res.stats.cache_hits = 0;
    res.stats.total_designs = 2;
    res.stats.valid_designs = 1;
    res.stats.unique_valid_designs = 1;
    res.stats.pareto_size = 1;
    res.stats.dominated_designs = 0;
    res.stats.num_threads = 1;
    res.stats.backend =
        with_sim ? EvalBackend::Simulated : EvalBackend::Analytic;
    res.stats.simulated_designs = with_sim ? 1 : 0;
    res.stats.stage.partition = {3, 2, 1.5};
    res.stats.stage.routing = {0, 5, 20.25};
    res.stats.stage.placement = {0, 5, 2.0};
    res.stats.stage.position_lp = {2, 3, 1.75};
    res.stats.stage.evaluation = {1, 4, 0.5};
    res.stats.elapsed_ms = 12.3456;
    return res;
}

/// Strip one column (0-based) out of a CSV document. Quoted cells in the
/// golden data never contain commas in the stripped column, and the
/// `routing` column holds bare policy names, so a plain comma split is
/// exact here.
std::string strip_csv_column(const std::string& csv, std::size_t col) {
    std::string out;
    std::istringstream is(csv);
    std::string line;
    while (std::getline(is, line)) {
        std::size_t start = 0;
        for (std::size_t c = 0; c < col; ++c)
            start = line.find(',', start) + 1;
        const std::size_t end = line.find(',', start);
        line.erase(start, end - start + 1);
        out += line;
        out += '\n';
    }
    return out;
}

/// Remove every `, "name": value` member from a JSON document (value =
/// one quoted string or bare token, which is all the exporter emits).
std::string strip_json_field(std::string json, const std::string& name) {
    const std::string needle = ", \"" + name + "\": ";
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at)) {
        std::size_t end = at + needle.size();
        if (json[end] == '"') end = json.find('"', end + 1) + 1;
        while (end < json.size() && json[end] != ',' && json[end] != '}' &&
               json[end] != '\n')
            ++end;
        json.erase(at, end - at);
    }
    return json;
}

const char* const kCsvGolden =
    "point,freq_mhz,max_tsvs,link_width_bits,phase,theta,routing,switches,"
    "valid,power_mw,latency_cycles,sim_latency_cycles,area_mm2,tsvs,"
    "pareto,cache_hit,fail_reason\n"
    "0,400,25,32,auto,4,up-down,3,1,13,2.125,-1,0.8125,12,1,0,\n"
    "0,400,25,32,auto,4,up-down,4,0,0,0,-1,0,0,0,0,"
    "\"routing failed, \"\"req\"\" class\"\n";

TEST(ExportGolden, CsvByteExact) {
    std::ostringstream os;
    explore_table(golden_result(false)).write_csv(os);
    EXPECT_EQ(os.str(), kCsvGolden);
}

TEST(ExportGolden, CsvSimLatencyColumn) {
    std::ostringstream os;
    explore_table(golden_result(true)).write_csv(os);
    const std::string expected =
        "point,freq_mhz,max_tsvs,link_width_bits,phase,theta,routing,"
        "switches,"
        "valid,power_mw,latency_cycles,sim_latency_cycles,area_mm2,tsvs,"
        "pareto,cache_hit,fail_reason\n"
        "0,400,25,32,auto,4,up-down,3,1,13,2.125,3.25,0.8125,12,1,0,\n"
        "0,400,25,32,auto,4,up-down,4,0,0,0,-1,0,0,0,0,"
        "\"routing failed, \"\"req\"\" class\"\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ExportGolden, CsvModuloAddedFieldMatchesPreRedesignGolden) {
    // The pre-redesign CSV golden, verbatim: dropping the added `routing`
    // column (index 6) from today's default-policy document must
    // reproduce it byte for byte.
    const std::string pre_redesign =
        "point,freq_mhz,max_tsvs,link_width_bits,phase,theta,switches,"
        "valid,power_mw,latency_cycles,sim_latency_cycles,area_mm2,tsvs,"
        "pareto,cache_hit,fail_reason\n"
        "0,400,25,32,auto,4,3,1,13,2.125,-1,0.8125,12,1,0,\n"
        "0,400,25,32,auto,4,4,0,0,0,-1,0,0,0,0,"
        "\"routing failed, \"\"req\"\" class\"\n";
    std::ostringstream os;
    explore_table(golden_result(false)).write_csv(os);
    EXPECT_EQ(strip_csv_column(os.str(), 6), pre_redesign);
}

TEST(ExportGolden, CsvNonDefaultPolicyRow) {
    ExploreResult res = golden_result(false);
    res.points[0].point.routing = routing::RoutingPolicyId::WestFirst;
    std::ostringstream os;
    explore_table(res).write_csv(os);
    EXPECT_NE(os.str().find("0,400,25,32,auto,4,west-first,3,"),
              std::string::npos);
}

const char* const kJsonGolden =
    "{\n"
        "  \"design\": \"D \\\"golden\\\"\",\n"
        "  \"stats\": {\n"
        "    \"total_points\": 1,\n"
        "    \"evaluated_points\": 1,\n"
        "    \"cache_hits\": 0,\n"
        "    \"total_designs\": 2,\n"
        "    \"valid_designs\": 1,\n"
        "    \"unique_valid_designs\": 1,\n"
        "    \"pareto_size\": 1,\n"
        "    \"dominated_designs\": 0,\n"
        "    \"num_threads\": 1,\n"
        "    \"backend\": \"analytic\",\n"
        "    \"simulated_designs\": 0,\n"
        "    \"stages\": {\n"
        "      \"partition\": {\"hits\": 3, \"misses\": 2,"
        " \"compute_ms\": 1.500},\n"
        "      \"routing\": {\"hits\": 0, \"misses\": 5,"
        " \"compute_ms\": 20.250},\n"
        "      \"placement\": {\"hits\": 0, \"misses\": 5,"
        " \"compute_ms\": 2.000},\n"
        "      \"position_lp\": {\"hits\": 2, \"misses\": 3,"
        " \"compute_ms\": 1.750},\n"
        "      \"evaluation\": {\"hits\": 1, \"misses\": 4,"
        " \"compute_ms\": 0.500}\n"
        "    },\n"
        "    \"elapsed_ms\": 12.346\n"
        "  },\n"
    "  \"points\": [\n"
    "    {\"point\": 0, \"label\": \"f=400MHz tsv=25 w=32 phase=auto"
    " theta=4\", \"freq_hz\": 400000000, \"max_tsvs\": 25,"
    " \"link_width_bits\": 32, \"phase\": \"auto\", \"theta\": 4,"
    " \"routing\": \"up-down\","
    " \"phase_used\": \"phase1\", \"cache_hit\": false,"
    " \"designs\": 2, \"valid\": 1, \"capacity_violations\": 2,"
    " \"pareto_survivors\": 1}\n"
    "  ],\n"
    "  \"pareto\": [\n"
    "    {\"point\": 0, \"design\": 0, \"switches\": 3,"
    " \"power_mw\": 13.0000, \"latency_cycles\": 2.1250,"
    " \"area_mm2\": 0.8125}\n"
    "  ]\n"
    "}\n";

TEST(ExportGolden, JsonByteExact) {
    std::ostringstream os;
    write_explore_json(os, golden_result(false), "D \"golden\"");
    EXPECT_EQ(os.str(), kJsonGolden);
}

TEST(ExportGolden, JsonModuloAddedFieldsMatchesPreRedesignGolden) {
    // The pre-redesign JSON golden, verbatim: stripping the two added
    // point fields (`routing`, `capacity_violations`) from today's
    // default-policy document must reproduce it byte for byte. The
    // default-policy label in particular is unchanged (non-default
    // policies append " routing=<name>").
    const std::string pre_redesign =
        "{\n"
        "  \"design\": \"D \\\"golden\\\"\",\n"
        "  \"stats\": {\n"
        "    \"total_points\": 1,\n"
        "    \"evaluated_points\": 1,\n"
        "    \"cache_hits\": 0,\n"
        "    \"total_designs\": 2,\n"
        "    \"valid_designs\": 1,\n"
        "    \"unique_valid_designs\": 1,\n"
        "    \"pareto_size\": 1,\n"
        "    \"dominated_designs\": 0,\n"
        "    \"num_threads\": 1,\n"
        "    \"backend\": \"analytic\",\n"
        "    \"simulated_designs\": 0,\n"
        "    \"stages\": {\n"
        "      \"partition\": {\"hits\": 3, \"misses\": 2,"
        " \"compute_ms\": 1.500},\n"
        "      \"routing\": {\"hits\": 0, \"misses\": 5,"
        " \"compute_ms\": 20.250},\n"
        "      \"placement\": {\"hits\": 0, \"misses\": 5,"
        " \"compute_ms\": 2.000},\n"
        "      \"position_lp\": {\"hits\": 2, \"misses\": 3,"
        " \"compute_ms\": 1.750},\n"
        "      \"evaluation\": {\"hits\": 1, \"misses\": 4,"
        " \"compute_ms\": 0.500}\n"
        "    },\n"
        "    \"elapsed_ms\": 12.346\n"
        "  },\n"
        "  \"points\": [\n"
        "    {\"point\": 0, \"label\": \"f=400MHz tsv=25 w=32 phase=auto"
        " theta=4\", \"freq_hz\": 400000000, \"max_tsvs\": 25,"
        " \"link_width_bits\": 32, \"phase\": \"auto\", \"theta\": 4,"
        " \"phase_used\": \"phase1\", \"cache_hit\": false,"
        " \"designs\": 2, \"valid\": 1, \"pareto_survivors\": 1}\n"
        "  ],\n"
        "  \"pareto\": [\n"
        "    {\"point\": 0, \"design\": 0, \"switches\": 3,"
        " \"power_mw\": 13.0000, \"latency_cycles\": 2.1250,"
        " \"area_mm2\": 0.8125}\n"
        "  ]\n"
        "}\n";
    std::ostringstream os;
    write_explore_json(os, golden_result(false), "D \"golden\"");
    std::string actual = strip_json_field(os.str(), "routing");
    actual = strip_json_field(actual, "capacity_violations");
    EXPECT_EQ(actual, pre_redesign);
}

TEST(ExportGolden, JsonNonDefaultPolicyPoint) {
    ExploreResult res = golden_result(false);
    res.points[0].point.routing = routing::RoutingPolicyId::OddEven;
    std::ostringstream os;
    write_explore_json(os, res, "D_oddeven");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"routing\": \"odd-even\""), std::string::npos);
    EXPECT_NE(json.find("phase=auto theta=4 routing=odd-even\""),
              std::string::npos);
}

TEST(ExportGolden, JsonSimFields) {
    std::ostringstream os;
    write_explore_json(os, golden_result(true), "D_sim");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"backend\": \"sim\""), std::string::npos);
    EXPECT_NE(json.find("\"simulated_designs\": 1"), std::string::npos);
    EXPECT_NE(json.find("{\"point\": 0, \"design\": 0, \"switches\": 3,"
                        " \"power_mw\": 13.0000,"
                        " \"latency_cycles\": 2.1250,"
                        " \"sim_latency_cycles\": 3.2500,"
                        " \"sim_p99_latency_cycles\": 7.5000,"
                        " \"sim_accepted_flits_per_cycle\": 0.5156,"
                        " \"area_mm2\": 0.8125}"),
              std::string::npos);
}

TEST(ExportGolden, JsonQuoteControlCharacters) {
    EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(json_quote(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
}

}  // namespace
}  // namespace sunfloor
