// Tests for the switch-position LP wrapper and floorplan legalization.
#include <gtest/gtest.h>

#include "sunfloor/core/path_compute.h"
#include "sunfloor/core/switch_placement.h"
#include "sunfloor/core/synthesizer.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

DesignSpec line_spec() {
    DesignSpec spec;
    auto add = [&](const char* n, double x) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = 0;
        c.position = {x, 0};
        spec.cores.add_core(c);
    };
    add("a", 0);
    add("b", 4);
    add("c", 8);
    spec.comm.add_flow({0, 1, 100, 0, FlowType::Request});
    spec.comm.add_flow({1, 2, 100, 0, FlowType::Request});
    return spec;
}

// A routed (but not yet placed/legalized) D_26_media topology.
struct RoutedFixture {
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg;
    Topology topo{CoreSpec{}, 0};

    RoutedFixture() {
        cfg.partition.num_starts = 4;
        cfg.run_floorplan = false;
        cfg.max_switches = 8;
        Rng rng(cfg.seed);
        auto points = run_phase1(spec, cfg, rng);
        const int bp = best_power_point(points);
        EXPECT_GE(bp, 0);
        topo = points[static_cast<std::size_t>(bp)].topo;
    }
};

TEST(SwitchPlacement, LpPutsSwitchOnMedianCore) {
    const auto spec = line_spec();
    CoreAssignment assign;
    assign.core_switch = {0, 0, 0};
    assign.switch_layer = {0};
    Topology topo = build_initial_topology(spec, assign);
    SynthesisConfig cfg;
    ASSERT_TRUE(compute_paths(topo, spec, cfg).ok);
    ASSERT_TRUE(place_switches_lp(topo, spec));
    // The L1 optimum for equal pulls from (0.5), (4.5), (8.5) is the
    // median: x = 4.5.
    EXPECT_NEAR(topo.switch_at(0).position.x, 4.5, 1e-6);
    EXPECT_NEAR(topo.switch_at(0).position.y, 0.5, 1e-6);
}

TEST(SwitchPlacement, LpReducesWeightedWireLength) {
    RoutedFixture f;
    // Scatter the switches to a deliberately bad placement first.
    for (int s = 0; s < f.topo.num_switches(); ++s)
        f.topo.switch_at(s).position = {0.0, 0.0};
    auto weighted_length = [&](const Topology& t) {
        double total = 0.0;
        for (int l = 0; l < t.num_links(); ++l)
            total += t.link(l).bw_mbps * t.link_planar_length(l);
        return total;
    };
    const double before = weighted_length(f.topo);
    ASSERT_TRUE(place_switches_lp(f.topo, f.spec));
    EXPECT_LT(weighted_length(f.topo), before);
}

TEST(SwitchPlacement, LegalizationRemovesOverlaps) {
    RoutedFixture f;
    place_switches_lp(f.topo, f.spec);
    Rng rng(3);
    const auto fp = legalize_floorplan(f.topo, f.spec, f.cfg, false, rng);
    EXPECT_EQ(fp.layer_area_mm2.size(), 3u);
    for (double a : fp.layer_area_mm2) EXPECT_GT(a, 0.0);
    // Die area stays in the same ballpark as the input floorplan.
    for (int ly = 0; ly < 3; ++ly) {
        const double input = f.spec.cores.layer_bounding_box(ly).area();
        EXPECT_LT(fp.layer_area_mm2[static_cast<std::size_t>(ly)],
                  input * 1.8)
            << "layer " << ly;
    }
}

TEST(SwitchPlacement, StandardInserterAlsoWorks) {
    RoutedFixture f;
    place_switches_lp(f.topo, f.spec);
    Rng rng(4);
    const auto fp = legalize_floorplan(f.topo, f.spec, f.cfg, true, rng);
    EXPECT_TRUE(fp.used_standard_inserter);
    for (double a : fp.layer_area_mm2) EXPECT_GT(a, 0.0);
}

TEST(SwitchPlacement, TsvMacrosPlacedForVerticalLinks) {
    RoutedFixture f;
    place_switches_lp(f.topo, f.spec);
    // Count links spanning two or more layers: each needs free-standing
    // intermediate macros.
    int multi_span = 0;
    for (int l = 0; l < f.topo.num_links(); ++l)
        if (f.topo.link_layers_crossed(l) >= 2) ++multi_span;
    Rng rng(5);
    const auto fp = legalize_floorplan(f.topo, f.spec, f.cfg, false, rng);
    EXPECT_GE(fp.tsv_macros_placed, multi_span);
}

TEST(SwitchPlacement, EmptyTopologyIsFine) {
    const auto spec = line_spec();
    Topology topo(spec.cores, spec.comm.num_flows());
    EXPECT_TRUE(place_switches_lp(topo, spec));
}

}  // namespace
}  // namespace sunfloor
