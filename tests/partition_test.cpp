// Tests for the balanced k-way min-cut partitioner (Algorithm 1/2 substrate).
#include <gtest/gtest.h>

#include <set>

#include "sunfloor/graph/partition.h"

namespace sunfloor {
namespace {

// Two dense clusters joined by one light edge: k=2 must cut the light edge.
Digraph two_clusters(double light_weight) {
    Digraph g(8);
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 10.0);
    for (int i = 4; i < 8; ++i)
        for (int j = i + 1; j < 8; ++j) g.add_edge(i, j, 10.0);
    g.add_edge(0, 4, light_weight);
    return g;
}

TEST(Partition, TwoClustersCutLightEdge) {
    Rng rng(1);
    const auto g = two_clusters(1.0);
    const auto res = partition_kway(g, 2, rng);
    EXPECT_DOUBLE_EQ(res.cut_weight, 1.0);
    // Blocks must be exactly the clusters.
    EXPECT_EQ(res.block[0], res.block[1]);
    EXPECT_EQ(res.block[0], res.block[3]);
    EXPECT_EQ(res.block[4], res.block[7]);
    EXPECT_NE(res.block[0], res.block[4]);
}

TEST(Partition, BalanceRespected) {
    Rng rng(2);
    Digraph g(10);
    for (int i = 0; i < 10; ++i)
        for (int j = i + 1; j < 10; ++j) g.add_edge(i, j, 1.0);
    for (int k = 2; k <= 5; ++k) {
        const auto res = partition_kway(g, k, rng);
        std::vector<int> sizes(k, 0);
        for (int b : res.block) {
            ASSERT_GE(b, 0);
            ASSERT_LT(b, k);
            ++sizes[b];
        }
        const int max_allowed = (10 + k - 1) / k;
        for (int s : sizes) {
            EXPECT_LE(s, max_allowed);
            EXPECT_GE(s, 1);  // no empty blocks
        }
    }
}

TEST(Partition, CustomMaxBlockSize) {
    Rng rng(3);
    Digraph g(9);
    for (int i = 0; i + 1 < 9; ++i) g.add_edge(i, i + 1, 1.0);
    PartitionOptions opts;
    opts.max_block_size = 3;
    const auto res = partition_kway(g, 3, rng, opts);
    std::vector<int> sizes(3, 0);
    for (int b : res.block) ++sizes[b];
    for (int s : sizes) EXPECT_LE(s, 3);
}

TEST(Partition, KEqualsOneAndN) {
    Rng rng(4);
    Digraph g(4);
    g.add_edge(0, 1, 5.0);
    const auto one = partition_kway(g, 1, rng);
    EXPECT_DOUBLE_EQ(one.cut_weight, 0.0);
    const auto all = partition_kway(g, 4, rng);
    std::set<int> blocks(all.block.begin(), all.block.end());
    EXPECT_EQ(blocks.size(), 4u);  // singletons
    EXPECT_DOUBLE_EQ(all.cut_weight, 5.0);
}

TEST(Partition, InvalidArguments) {
    Rng rng(5);
    Digraph g(3);
    EXPECT_THROW(partition_kway(g, 0, rng), std::invalid_argument);
    EXPECT_THROW(partition_kway(g, 4, rng), std::invalid_argument);
    PartitionOptions opts;
    opts.max_block_size = 1;
    EXPECT_THROW(partition_kway(g, 2, rng, opts), std::invalid_argument);
}

TEST(Partition, CutWeightConsistent) {
    Rng rng(6);
    const auto g = two_clusters(2.5);
    const auto res = partition_kway(g, 2, rng);
    EXPECT_DOUBLE_EQ(cut_weight(g, res.block), res.cut_weight);
}

TEST(Partition, RefinementImprovesOrMatchesGreedy) {
    Rng rng1(7);
    Rng rng2(7);
    Digraph g(12);
    Rng grng(8);
    for (int i = 0; i < 12; ++i)
        for (int j = i + 1; j < 12; ++j)
            if (grng.next_bool(0.5))
                g.add_edge(i, j, 1.0 + grng.next_double() * 4.0);
    PartitionOptions with;
    PartitionOptions without;
    without.refine = false;
    const auto a = partition_kway(g, 3, rng1, with);
    const auto b = partition_kway(g, 3, rng2, without);
    EXPECT_LE(a.cut_weight, b.cut_weight + 1e-9);
}

TEST(Partition, DirectedCutCountsEachEdge) {
    Digraph g(4);
    g.add_edge(0, 2, 1.0);
    g.add_edge(2, 0, 2.0);
    const std::vector<int> block{0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(cut_weight(g, block), 3.0);
}

// Property sweep: partitions stay legal for many seeds and k values.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, AlwaysLegalPartitions) {
    const int seed = GetParam();
    Rng grng(static_cast<std::uint64_t>(seed) * 977 + 1);
    const int n = 6 + seed % 11;
    Digraph g(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (grng.next_bool(0.4)) g.add_edge(i, j, grng.next_double() * 10);
    for (int k = 1; k <= n; k += 2) {
        Rng rng(static_cast<std::uint64_t>(seed));
        const auto res = partition_kway(g, k, rng);
        ASSERT_EQ(static_cast<int>(res.block.size()), n);
        std::vector<int> sizes(k, 0);
        for (int b : res.block) {
            ASSERT_GE(b, 0);
            ASSERT_LT(b, k);
            ++sizes[b];
        }
        for (int s : sizes) EXPECT_LE(s, (n + k - 1) / k);
        EXPECT_GE(res.cut_weight, 0.0);
        EXPECT_DOUBLE_EQ(res.cut_weight, cut_weight(g, res.block));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace sunfloor
