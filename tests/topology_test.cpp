// Tests for the NoC topology data model.
#include <gtest/gtest.h>

#include "sunfloor/noc/topology.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

// Small 2-layer spec: cores c0(L0), c1(L0), c2(L1).
DesignSpec small_spec() {
    DesignSpec spec;
    auto add = [&](const char* n, int layer, double x) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        c.position = {x, 0};
        spec.cores.add_core(c);
    };
    add("c0", 0, 0.0);
    add("c1", 0, 2.0);
    add("c2", 1, 1.0);
    spec.comm.add_flow({0, 1, 100, 10, FlowType::Request});
    spec.comm.add_flow({0, 2, 200, 10, FlowType::Request});
    spec.comm.add_flow({2, 0, 200, 10, FlowType::Response});
    return spec;
}

TEST(Topology, SwitchAndLinkBookkeeping) {
    const auto spec = small_spec();
    Topology t(spec.cores, spec.comm.num_flows());
    EXPECT_EQ(t.num_cores(), 3);
    const int s0 = t.add_switch("sw0", 0, {1, 1});
    const int s1 = t.add_switch("sw1", 1, {1, 1});
    EXPECT_EQ(t.num_switches(), 2);
    const int l0 = t.add_link(NodeRef::core(0), NodeRef::sw(s0));
    EXPECT_EQ(t.add_link(NodeRef::core(0), NodeRef::sw(s0)), l0);  // dedup
    const int l0r = t.add_link(NodeRef::core(0), NodeRef::sw(s0),
                               FlowType::Response);
    EXPECT_NE(l0r, l0);  // classes are distinct physical channels
    const int lp = t.add_parallel_link(NodeRef::core(0), NodeRef::sw(s0),
                                       FlowType::Request);
    EXPECT_NE(lp, l0);  // explicit parallel channel
    t.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    EXPECT_EQ(t.switch_in_degree(s0), 3);
    EXPECT_EQ(t.switch_out_degree(s0), 1);
    EXPECT_EQ(t.switch_in_degree(s1), 1);
}

TEST(Topology, RejectsBadLinks) {
    const auto spec = small_spec();
    Topology t(spec.cores, 0);
    t.add_switch("s", 0);
    EXPECT_THROW(t.add_link(NodeRef::core(0), NodeRef::core(1)),
                 std::invalid_argument);
    EXPECT_THROW(t.add_link(NodeRef::core(9), NodeRef::sw(0)),
                 std::out_of_range);
    EXPECT_THROW(t.add_link(NodeRef::sw(0), NodeRef::sw(0)),
                 std::invalid_argument);
}

TEST(Topology, FlowPathAccumulatesBandwidth) {
    const auto spec = small_spec();
    Topology t(spec.cores, spec.comm.num_flows());
    const int s = t.add_switch("s", 0, {1, 0});
    const int a = t.add_link(NodeRef::core(0), NodeRef::sw(s));
    const int b = t.add_link(NodeRef::sw(s), NodeRef::core(1));
    t.set_flow_path(0, spec.comm.flow(0), {a, b});
    EXPECT_TRUE(t.has_path(0));
    EXPECT_DOUBLE_EQ(t.link(a).bw_mbps, 100.0);
    EXPECT_DOUBLE_EQ(t.link(b).bw_mbps, 100.0);
    EXPECT_FALSE(t.all_flows_routed());
    EXPECT_THROW(t.set_flow_path(0, spec.comm.flow(0), {a, b}),
                 std::invalid_argument);  // already routed
}

TEST(Topology, PathValidation) {
    const auto spec = small_spec();
    Topology t(spec.cores, spec.comm.num_flows());
    const int s0 = t.add_switch("s0", 0);
    const int s1 = t.add_switch("s1", 1);
    const int a = t.add_link(NodeRef::core(0), NodeRef::sw(s0));
    const int b = t.add_link(NodeRef::sw(s1), NodeRef::core(1));
    // Not contiguous: s0 -> s1 link missing.
    EXPECT_THROW(t.set_flow_path(0, spec.comm.flow(0), {a, b}),
                 std::invalid_argument);
    // Wrong class: flow 2 is a response.
    const int c = t.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    const int d = t.add_link(NodeRef::sw(s1), NodeRef::core(0));
    EXPECT_THROW(t.set_flow_path(2, spec.comm.flow(2), {a, c, d}),
                 std::invalid_argument);
    EXPECT_THROW(t.set_flow_path(0, spec.comm.flow(0), {}),
                 std::invalid_argument);
}

TEST(Topology, GeometryAndLayers) {
    const auto spec = small_spec();
    Topology t(spec.cores, 0);
    const int s0 = t.add_switch("s0", 0, {0.5, 0.5});
    const int s1 = t.add_switch("s1", 1, {2.5, 0.5});
    const int l = t.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    EXPECT_DOUBLE_EQ(t.link_planar_length(l), 2.0);
    EXPECT_EQ(t.link_layers_crossed(l), 1);
    EXPECT_EQ(t.node_layer(NodeRef::core(2)), 1);
    // Core centers snapshot from the spec.
    EXPECT_EQ(t.node_position(NodeRef::core(1)), (Point{2.5, 0.5}));
    t.set_core_geometry(1, {9, 9}, 0);
    EXPECT_EQ(t.node_position(NodeRef::core(1)), (Point{9, 9}));
}

TEST(Topology, InterLayerLinkCounting) {
    const auto spec = small_spec();
    Topology t(spec.cores, 0);
    const int s0 = t.add_switch("s0", 0);
    const int s2 = t.add_switch("s2", 2);
    t.add_link(NodeRef::sw(s0), NodeRef::sw(s2));      // spans 0-1 and 1-2
    t.add_link(NodeRef::core(0), NodeRef::sw(s0));     // intra-layer
    t.add_link(NodeRef::core(2), NodeRef::sw(s0));     // crosses 0-1
    EXPECT_EQ(t.inter_layer_links(0, 1), 2);
    EXPECT_EQ(t.inter_layer_links(1, 2), 1);
    EXPECT_EQ(t.total_inter_layer_links(), 3);
    EXPECT_EQ(t.max_ill_used(3), 2);
}

TEST(Topology, SwitchThroughBandwidth) {
    const auto spec = small_spec();
    Topology t(spec.cores, spec.comm.num_flows());
    const int s = t.add_switch("s", 0, {1, 0});
    const int a = t.add_link(NodeRef::core(0), NodeRef::sw(s));
    const int b = t.add_link(NodeRef::sw(s), NodeRef::core(1));
    const int c = t.add_link(NodeRef::sw(s), NodeRef::core(2));
    t.set_flow_path(0, spec.comm.flow(0), {a, b});
    t.set_flow_path(1, spec.comm.flow(1), {a, c});
    // Both flows enter via link a: through bandwidth = 300.
    EXPECT_DOUBLE_EQ(t.switch_through_bw(s), 300.0);
}

}  // namespace
}  // namespace sunfloor
