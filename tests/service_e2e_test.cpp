// End-to-end daemon tests: a real Server on a unix socket, driven
// through the Client over the line-delimited JSON protocol. Covers the
// submit/status/result/stats lifecycle, byte-identity of a served
// result against the one-shot path, the named wire errors (malformed
// frames, oversized frames, unknown ids), and graceful shutdown — the
// shutdown op drains the in-flight work and wait() returns with every
// accepted job finished.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/io/report.h"
#include "sunfloor/service/client.h"
#include "sunfloor/service/protocol.h"
#include "sunfloor/service/server.h"
#include "sunfloor/service/transport.h"
#include "sunfloor/spec/parser.h"
#include "sunfloor/specgen/specgen.h"
#include "sunfloor/util/strings.h"

namespace sunfloor::service {
namespace {

DesignSpec e2e_spec(std::uint64_t seed = 1) {
    specgen::GenParams gp;
    gp.family = specgen::GenFamily::Pipeline;
    gp.num_cores = 8;
    gp.num_layers = 2;
    return specgen::generate(gp, seed);
}

std::string spec_text_of(const DesignSpec& spec) {
    std::ostringstream os;
    write_design(os, spec);
    return os.str();
}

SubmitRequest fast_submit(const DesignSpec& spec, bool wait) {
    SubmitRequest sr;
    sr.client = "e2e";
    sr.spec_name = spec.name;
    sr.spec_text = spec_text_of(spec);
    sr.params.floorplan = false;
    sr.wait = wait;
    return sr;
}

// What the one-shot CLI writes as *_points.csv for the same request.
std::string reference_csv(const DesignSpec& spec) {
    SynthesisConfig cfg;
    cfg.eval.freq_hz = 400.0 * 1e6;
    cfg.run_floorplan = false;
    const SynthesisResult res = run_synthesis(spec, cfg);
    std::ostringstream os;
    design_points_table(res.points).write_csv(os);
    return os.str();
}

class ServiceE2E : public ::testing::Test {
  protected:
    void SetUp() override {
        // Unix socket paths are length-limited (~108 bytes): keep it in
        // /tmp, unique per process so parallel ctest runs never collide.
        socket_path_ = format("/tmp/sunfloor_e2e_%d.sock",
                              static_cast<int>(::getpid()));
        ServerOptions opts;
        opts.listen = socket_path_;
        opts.engine.workers = 2;
        opts.conn_threads = 2;
        server_ = std::make_unique<Server>(opts);
        std::string error;
        ASSERT_TRUE(server_->start(error)) << error;
    }

    void TearDown() override {
        server_.reset();  // request_shutdown + wait
        std::remove(socket_path_.c_str());
    }

    // One fresh connection per call: returns the parsed response.
    JsonValue call(const std::string& frame) {
        Client client;
        std::string error;
        EXPECT_TRUE(client.connect(socket_path_, error)) << error;
        JsonValue response;
        EXPECT_TRUE(client.call(frame, response, error)) << error;
        return response;
    }

    static bool ok_of(const JsonValue& v) {
        const JsonValue* ok = v.find("ok");
        return ok && ok->is_bool() && ok->as_bool();
    }

    static std::string error_of(const JsonValue& v) {
        const JsonValue* err = v.find("error");
        return err && err->is_string() ? err->as_string() : std::string();
    }

    std::string socket_path_;
    std::unique_ptr<Server> server_;
};

TEST_F(ServiceE2E, SubmitWaitReturnsTheOneShotBytes) {
    const DesignSpec spec = e2e_spec();
    const std::string want = reference_csv(spec);
    ASSERT_FALSE(want.empty());

    const JsonValue resp =
        call(make_submit_frame(fast_submit(spec, /*wait=*/true)));
    ASSERT_TRUE(ok_of(resp)) << error_of(resp);
    const JsonValue* status = resp.find("status");
    ASSERT_TRUE(status && status->is_string());
    EXPECT_EQ(status->as_string(), "done");
    const JsonValue* result = resp.find("result");
    ASSERT_TRUE(result && result->is_object());
    const JsonValue* csv = result->find("csv");
    ASSERT_TRUE(csv && csv->is_string());
    EXPECT_EQ(csv->as_string(), want);
    const JsonValue* kind = result->find("kind");
    ASSERT_TRUE(kind && kind->is_string());
    EXPECT_EQ(kind->as_string(), "synth");
    const JsonValue* points = result->find("num_points");
    ASSERT_TRUE(points && points->is_integer());
    EXPECT_GT(points->as_int64(), 0);
}

TEST_F(ServiceE2E, AsyncLifecycleSubmitStatusResult) {
    const JsonValue sub =
        call(make_submit_frame(fast_submit(e2e_spec(), /*wait=*/false)));
    ASSERT_TRUE(ok_of(sub)) << error_of(sub);
    const JsonValue* idv = sub.find("id");
    ASSERT_TRUE(idv && idv->is_integer());
    const auto id = static_cast<std::uint64_t>(idv->as_int64());

    // status is valid at any point in the job's life.
    const JsonValue st = call(make_status_frame(id));
    ASSERT_TRUE(ok_of(st)) << error_of(st);
    const JsonValue* state = st.find("status");
    ASSERT_TRUE(state && state->is_string());

    // result with wait=true blocks until terminal.
    const JsonValue res = call(make_result_frame(id, /*wait=*/true));
    ASSERT_TRUE(ok_of(res)) << error_of(res);
    const JsonValue* status = res.find("status");
    ASSERT_TRUE(status && status->is_string());
    EXPECT_EQ(status->as_string(), "done");
}

TEST_F(ServiceE2E, SequentialRequestsShareOneConnection) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(socket_path_, error)) << error;
    JsonValue resp;
    ASSERT_TRUE(client.call(make_stats_frame(), resp, error)) << error;
    EXPECT_TRUE(ok_of(resp));
    ASSERT_TRUE(client.call(make_status_frame(12345), resp, error))
        << error;
    EXPECT_FALSE(ok_of(resp));
    EXPECT_EQ(error_of(resp), "unknown job id 12345");
    ASSERT_TRUE(client.call(make_stats_frame(), resp, error)) << error;
    EXPECT_TRUE(ok_of(resp));  // the connection survived the error
}

TEST_F(ServiceE2E, WireErrorsAreNamed) {
    JsonValue resp = call("{\"op\":");
    EXPECT_FALSE(ok_of(resp));
    EXPECT_EQ(error_of(resp).rfind("malformed JSON: ", 0), 0u)
        << error_of(resp);

    resp = call("{\"op\":\"submit\",\"spec\":\"x\",\"config\":"
                "{\"frobnicate\":1}}");
    EXPECT_FALSE(ok_of(resp));
    EXPECT_EQ(error_of(resp), "unknown field \"config.frobnicate\"");

    // A spec that fails the spec parser reports through with the named
    // line.
    resp = call("{\"op\":\"submit\",\"spec\":\"not a core line\"}");
    EXPECT_FALSE(ok_of(resp));
    EXPECT_EQ(error_of(resp).rfind("spec: ", 0), 0u) << error_of(resp);

    resp = call(make_result_frame(424242, false));
    EXPECT_FALSE(ok_of(resp));
    EXPECT_EQ(error_of(resp), "unknown job id 424242");
}

TEST_F(ServiceE2E, OversizedFrameGetsANamedErrorThenTheConnectionDrops) {
    // A dedicated server with a tiny frame budget.
    const std::string path =
        format("/tmp/sunfloor_e2e_small_%d.sock",
               static_cast<int>(::getpid()));
    ServerOptions opts;
    opts.listen = path;
    opts.engine.workers = 1;
    opts.max_frame_bytes = 256;
    Server server(opts);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(path, error)) << error;
    JsonValue resp;
    const std::string big(1024, 'x');
    ASSERT_TRUE(
        client.call("{\"op\":\"stats\",\"pad\":\"" + big + "\"}", resp,
                    error))
        << error;
    EXPECT_FALSE(ok_of(resp));
    EXPECT_NE(error_of(resp).find("frame exceeds 256 bytes"),
              std::string::npos)
        << error_of(resp);
    // Framing is unrecoverable: the server dropped the connection.
    EXPECT_FALSE(client.call(make_stats_frame(), resp, error));
    std::remove(path.c_str());
}

TEST_F(ServiceE2E, StatsReflectServedJobs) {
    call(make_submit_frame(fast_submit(e2e_spec(), /*wait=*/true)));
    const JsonValue resp = call(make_stats_frame());
    ASSERT_TRUE(ok_of(resp)) << error_of(resp);
    const JsonValue* stats = resp.find("stats");
    ASSERT_TRUE(stats && stats->is_object());
    const JsonValue* submitted = stats->find("submitted");
    ASSERT_TRUE(submitted && submitted->is_integer());
    EXPECT_GE(submitted->as_int64(), 1);
    const JsonValue* completed = stats->find("completed");
    ASSERT_TRUE(completed && completed->is_integer());
    EXPECT_GE(completed->as_int64(), 1);
    const JsonValue* workers = stats->find("workers");
    ASSERT_TRUE(workers && workers->is_integer());
    EXPECT_EQ(workers->as_int64(), 2);
}

TEST_F(ServiceE2E, ShutdownOpDrainsInFlightJobsBeforeWaitReturns) {
    // Queue work asynchronously, then shut down: the accepted job must
    // finish (never be lost) even though the submission raced the drain.
    const JsonValue sub =
        call(make_submit_frame(fast_submit(e2e_spec(7), /*wait=*/false)));
    ASSERT_TRUE(ok_of(sub)) << error_of(sub);

    const JsonValue down = call(make_shutdown_frame());
    ASSERT_TRUE(ok_of(down)) << error_of(down);
    const JsonValue* status = down.find("status");
    ASSERT_TRUE(status && status->is_string());
    EXPECT_EQ(status->as_string(), "draining");

    server_->wait();
    const EngineStats st = server_->engine().stats();
    EXPECT_EQ(st.queued, 0);
    EXPECT_EQ(st.running, 0);
    EXPECT_EQ(st.completed + st.failed, st.submitted);
    EXPECT_EQ(st.failed, 0);

    // The listening socket is gone: new connections fail.
    Client late;
    std::string error;
    EXPECT_FALSE(late.connect(socket_path_, error));
}

}  // namespace
}  // namespace sunfloor::service
