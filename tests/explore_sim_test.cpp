// Simulated evaluation backend of the Explorer: thread-count
// determinism of the SimReports (extending PR 1's per-point-seeding
// guarantee to the simulator), measured-latency Pareto ranking, cache
// interaction and seed derivation.
#include <gtest/gtest.h>

#include <cstring>

#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return cfg;
}

ExploreOptions sim_opts(int threads) {
    ExploreOptions opts;
    opts.num_threads = threads;
    opts.backend = EvalBackend::Simulated;
    opts.sim.warmup_cycles = 200;
    opts.sim.measure_cycles = 1500;
    opts.sim.inject.packet_length_flits = 2;
    return opts;
}

ParamGrid small_grid() {
    ParamGrid grid;
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));
    grid.set_axis(ParamAxis::thetas({4.0}));
    return grid;
}

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_sim_reports(const ExploreResult& a, const ExploreResult& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const auto& pa = a.points[i];
        const auto& pb = b.points[i];
        ASSERT_EQ(pa.sim_reports.size(), pb.sim_reports.size());
        for (std::size_t d = 0; d < pa.sim_reports.size(); ++d) {
            const sim::SimReport& ra = pa.sim_reports[d];
            const sim::SimReport& rb = pb.sim_reports[d];
            EXPECT_EQ(ra.injected_packets, rb.injected_packets);
            EXPECT_EQ(ra.received_packets, rb.received_packets);
            EXPECT_EQ(ra.injected_flits, rb.injected_flits);
            EXPECT_EQ(ra.received_flits, rb.received_flits);
            EXPECT_EQ(ra.cycles_run, rb.cycles_run);
            EXPECT_EQ(ra.drained, rb.drained);
            EXPECT_TRUE(bitwise_equal(ra.avg_latency_cycles,
                                      rb.avg_latency_cycles));
            EXPECT_TRUE(bitwise_equal(ra.p99_latency_cycles,
                                      rb.p99_latency_cycles));
            EXPECT_TRUE(bitwise_equal(ra.max_latency_cycles,
                                      rb.max_latency_cycles));
            EXPECT_TRUE(bitwise_equal(ra.accepted_flits_per_cycle,
                                      rb.accepted_flits_per_cycle));
            ASSERT_EQ(ra.flow_avg_latency_cycles.size(),
                      rb.flow_avg_latency_cycles.size());
            for (std::size_t f = 0; f < ra.flow_avg_latency_cycles.size();
                 ++f)
                EXPECT_TRUE(
                    bitwise_equal(ra.flow_avg_latency_cycles[f],
                                  rb.flow_avg_latency_cycles[f]));
            ASSERT_EQ(ra.link_utilization.size(),
                      rb.link_utilization.size());
            for (std::size_t l = 0; l < ra.link_utilization.size(); ++l)
                EXPECT_TRUE(bitwise_equal(ra.link_utilization[l],
                                          rb.link_utilization[l]));
        }
    }
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].point_index, b.pareto[i].point_index);
        EXPECT_EQ(a.pareto[i].design_index, b.pareto[i].design_index);
    }
}

TEST(ExploreSim, SimReportsBitIdenticalAcrossThreadCounts) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const ParamGrid grid = small_grid();
    const ExploreResult ref =
        Explorer(spec, fast_cfg(), sim_opts(1)).run(grid);
    EXPECT_EQ(ref.stats.backend, EvalBackend::Simulated);
    EXPECT_GT(ref.stats.simulated_designs, 0);
    for (int threads : {2, 8}) {
        const ExploreResult got =
            Explorer(spec, fast_cfg(), sim_opts(threads)).run(grid);
        expect_same_sim_reports(ref, got);
    }
}

TEST(ExploreSim, CacheHitsStillCarrySimReports) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const Explorer explorer(spec, fast_cfg(), sim_opts(2));
    const ParamGrid grid = small_grid();
    const ExploreResult first = explorer.run(grid);
    const ExploreResult second = explorer.run(grid);  // all cache hits
    EXPECT_EQ(second.stats.evaluated_points, 0);
    expect_same_sim_reports(first, second);
}

TEST(ExploreSim, EverySimulatedDesignIsValidAndRouted) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const ExploreResult res =
        Explorer(spec, fast_cfg(), sim_opts(2)).run(small_grid());
    int simulated = 0;
    for (const auto& pr : res.points) {
        ASSERT_EQ(pr.sim_reports.size(), pr.result.points.size());
        for (std::size_t d = 0; d < pr.sim_reports.size(); ++d) {
            const auto* sr = pr.sim_report(static_cast<int>(d));
            const DesignPoint& dp = pr.result.points[d];
            if (!dp.valid) {
                EXPECT_EQ(sr, nullptr);
                continue;
            }
            ASSERT_NE(sr, nullptr);
            ++simulated;
            EXPECT_TRUE(sr->drained);
            EXPECT_GT(sr->received_packets, 0);
            // Measured latency under load can only exceed zero load.
            EXPECT_GE(sr->avg_latency_cycles,
                      dp.report.avg_latency_cycles - 1e-9);
        }
    }
    EXPECT_GT(simulated, 0);
    // Duplicated keys aside, every simulated design was a simulator run.
    EXPECT_EQ(res.stats.simulated_designs, simulated);
}

TEST(ExploreSim, MeasuredParetoUsesOnlyValidDesigns) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const ExploreResult res =
        Explorer(spec, fast_cfg(), sim_opts(2)).run(small_grid());
    EXPECT_GT(res.pareto.size(), 0u);
    for (const auto& e : res.pareto) {
        EXPECT_TRUE(res.design(e).valid);
        EXPECT_NE(res.points[static_cast<std::size_t>(e.point_index)]
                      .sim_report(e.design_index),
                  nullptr);
    }
}

TEST(ExploreSim, MeasuredFrontFallsBackToAnalyticWithoutReports) {
    // global_pareto_measured on analytic results (no sim reports) must
    // reduce to the analytic front.
    const DesignSpec spec = make_benchmark("D_36_4");
    ExploreOptions opts;
    opts.num_threads = 1;
    const ExploreResult res =
        Explorer(spec, fast_cfg(), opts).run(small_grid());
    const auto measured = global_pareto_measured(res.points);
    ASSERT_EQ(measured.size(), res.pareto.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        EXPECT_EQ(measured[i].point_index, res.pareto[i].point_index);
        EXPECT_EQ(measured[i].design_index, res.pareto[i].design_index);
    }
}

TEST(ExploreSim, TableCarriesSimLatencyColumn) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const ExploreResult res =
        Explorer(spec, fast_cfg(), sim_opts(2)).run(small_grid());
    const Table t = explore_table(res);
    ASSERT_EQ(t.columns()[11], "sim_latency_cycles");
    bool any_simulated = false;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
        const double v = std::get<double>(t.row(r)[11]);
        if (v >= 0.0) any_simulated = true;
    }
    EXPECT_TRUE(any_simulated);
}

TEST(ExploreSim, SeedDerivationMixesAllInputs) {
    const std::uint64_t a = explore_sim_seed(1, 2, 0);
    EXPECT_EQ(a, explore_sim_seed(1, 2, 0));
    EXPECT_NE(a, explore_sim_seed(2, 2, 0));
    EXPECT_NE(a, explore_sim_seed(1, 3, 0));
    EXPECT_NE(a, explore_sim_seed(1, 2, 1));
}

TEST(ExploreSim, BackendStringsRoundTrip) {
    EvalBackend b = EvalBackend::Analytic;
    ASSERT_TRUE(backend_from_string("sim", b));
    EXPECT_EQ(b, EvalBackend::Simulated);
    ASSERT_TRUE(backend_from_string("analytic", b));
    EXPECT_EQ(b, EvalBackend::Analytic);
    EXPECT_STREQ(backend_to_string(EvalBackend::Simulated), "sim");
    EXPECT_FALSE(backend_from_string("magic", b));
}

}  // namespace
}  // namespace sunfloor
