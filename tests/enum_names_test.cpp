// The unified enum<->string codec and the four tables built on it
// (synthesis phase, evaluation backend, sim traffic pattern, routing
// policy): canonical round-trips, case-insensitive parsing, aliases and
// choices strings.
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/explore/explorer.h"
#include "sunfloor/routing/policy.h"
#include "sunfloor/sim/injection.h"
#include "sunfloor/util/enum_names.h"

namespace sunfloor {
namespace {

enum class Fruit { Apple, Pear };

constexpr EnumName<Fruit> kFruits[] = {
    {Fruit::Apple, "apple"},
    {Fruit::Pear, "pear"},
    {Fruit::Pear, "quince"},  // parse-only alias
};

TEST(EnumNames, ToStringUsesCanonicalName) {
    EXPECT_STREQ(enum_to_string<Fruit>(kFruits, Fruit::Apple, "?"), "apple");
    EXPECT_STREQ(enum_to_string<Fruit>(kFruits, Fruit::Pear, "?"), "pear");
    EXPECT_STREQ(enum_to_string<Fruit>(kFruits, static_cast<Fruit>(99), "?"),
                 "?");
}

TEST(EnumNames, FromStringIsCaseInsensitiveAndKnowsAliases) {
    Fruit f = Fruit::Apple;
    EXPECT_TRUE(enum_from_string<Fruit>(kFruits, "PEAR", f));
    EXPECT_EQ(f, Fruit::Pear);
    EXPECT_TRUE(enum_from_string<Fruit>(kFruits, "Quince", f));
    EXPECT_EQ(f, Fruit::Pear);
    f = Fruit::Apple;
    EXPECT_FALSE(enum_from_string<Fruit>(kFruits, "mango", f));
    EXPECT_EQ(f, Fruit::Apple);  // untouched on failure
    EXPECT_FALSE(enum_from_string<Fruit>(kFruits, "", f));
    EXPECT_FALSE(enum_from_string<Fruit>(kFruits, "pearl", f));
}

TEST(EnumNames, ChoicesListsCanonicalNamesOnly) {
    EXPECT_EQ(enum_choices<Fruit>(kFruits), "apple|pear");
}

TEST(EnumNames, Iequals) {
    EXPECT_TRUE(iequals("Sim", "sim"));
    EXPECT_TRUE(iequals("", ""));
    EXPECT_FALSE(iequals("sim", "simu"));
    EXPECT_FALSE(iequals("sim", "sIn"));
}

TEST(EnumNames, PhaseTable) {
    SynthesisPhase p = SynthesisPhase::Phase2;
    EXPECT_TRUE(phase_from_string("AUTO", p));
    EXPECT_EQ(p, SynthesisPhase::Auto);
    EXPECT_TRUE(phase_from_string("1", p));
    EXPECT_EQ(p, SynthesisPhase::Phase1);
    EXPECT_FALSE(phase_from_string("phase1", p));
    EXPECT_STREQ(phase_to_string(SynthesisPhase::Phase2), "2");
    EXPECT_EQ(phase_choices(), "auto|1|2");
    // Round-trip every value.
    for (SynthesisPhase v : {SynthesisPhase::Auto, SynthesisPhase::Phase1,
                             SynthesisPhase::Phase2}) {
        SynthesisPhase back = SynthesisPhase::Auto;
        EXPECT_TRUE(phase_from_string(phase_to_string(v), back));
        EXPECT_EQ(back, v);
    }
}

TEST(EnumNames, BackendTable) {
    EvalBackend b = EvalBackend::Analytic;
    EXPECT_TRUE(backend_from_string("SIM", b));
    EXPECT_EQ(b, EvalBackend::Simulated);
    EXPECT_TRUE(backend_from_string("Simulated", b));  // legacy alias
    EXPECT_EQ(b, EvalBackend::Simulated);
    EXPECT_TRUE(backend_from_string("analytic", b));
    EXPECT_EQ(b, EvalBackend::Analytic);
    EXPECT_FALSE(backend_from_string("magic", b));
    EXPECT_STREQ(backend_to_string(EvalBackend::Simulated), "sim");
    EXPECT_EQ(backend_choices(), "analytic|sim");
}

TEST(EnumNames, TrafficTable) {
    sim::Traffic t = sim::Traffic::Uniform;
    EXPECT_TRUE(sim::traffic_from_string("HotSpot", t));
    EXPECT_EQ(t, sim::Traffic::Hotspot);
    EXPECT_TRUE(sim::traffic_from_string("bursty", t));
    EXPECT_EQ(t, sim::Traffic::Bursty);
    EXPECT_FALSE(sim::traffic_from_string("random", t));
    EXPECT_STREQ(sim::traffic_to_string(sim::Traffic::Uniform), "uniform");
    EXPECT_EQ(sim::traffic_choices(), "uniform|bursty|hotspot");
}

TEST(EnumNames, RoutingTable) {
    using routing::RoutingPolicyId;
    RoutingPolicyId r = RoutingPolicyId::UpDown;
    EXPECT_TRUE(routing::routing_from_string("West-First", r));
    EXPECT_EQ(r, RoutingPolicyId::WestFirst);
    EXPECT_TRUE(routing::routing_from_string("ODDEVEN", r));  // alias
    EXPECT_EQ(r, RoutingPolicyId::OddEven);
    EXPECT_TRUE(routing::routing_from_string("updown", r));  // alias
    EXPECT_EQ(r, RoutingPolicyId::UpDown);
    EXPECT_FALSE(routing::routing_from_string("xy", r));
    EXPECT_STREQ(routing::routing_to_string(RoutingPolicyId::OddEven),
                 "odd-even");
    EXPECT_EQ(routing::routing_choices(), "up-down|west-first|odd-even");
    for (RoutingPolicyId v :
         {RoutingPolicyId::UpDown, RoutingPolicyId::WestFirst,
          RoutingPolicyId::OddEven}) {
        RoutingPolicyId back = RoutingPolicyId::UpDown;
        EXPECT_TRUE(
            routing::routing_from_string(routing::routing_to_string(v), back));
        EXPECT_EQ(back, v);
        // The singleton registry serves the matching policy under its
        // canonical name.
        EXPECT_EQ(routing::routing_policy(v).id(), v);
        EXPECT_STREQ(routing::routing_policy(v).name(),
                     routing::routing_to_string(v));
    }
}

}  // namespace
}  // namespace sunfloor
