// Injection-parameter validation and the batched draw path.
//
// Regression suite for three input-validation bugs: a NaN (or infinite)
// injection_scale / hotspot_factor used to sail past the bare sign
// checks — NaN comparisons are false — and poison every flow rate
// through the std::min(1.0, rate) clamp; an out-of-range hotspot_core
// silently degraded hotspot traffic to uniform (no flow ever sinks at a
// nonexistent core). All three must now throw std::invalid_argument
// naming the offending parameter. The suite also pins the draw_cycle()
// fast path to the step()-per-flow reference: same hits, same RNG
// stream.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "sunfloor/noc/evaluation.h"
#include "sunfloor/sim/injection.h"

namespace sunfloor {
namespace {

using sim::InjectionParams;
using sim::InjectionState;
using sim::Traffic;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Four cores with flows 0->1, 2->1, 3->0 (core 1 is the busiest sink).
DesignSpec small_spec() {
    DesignSpec spec;
    for (int c = 0; c < 4; ++c) {
        Core core;
        core.name = "c" + std::to_string(c);
        core.position = {1.1 * c, 0.0};
        spec.cores.add_core(core);
    }
    spec.comm.add_flow({0, 1, 400.0, 0.0, FlowType::Request});
    spec.comm.add_flow({2, 1, 300.0, 0.0, FlowType::Request});
    spec.comm.add_flow({3, 0, 200.0, 0.0, FlowType::Request});
    return spec;
}

/// The invalid_argument thrown by flow_packet_rates for `inj`, or "" if
/// it did not throw.
std::string thrown_message(const InjectionParams& inj) {
    try {
        sim::flow_packet_rates(small_spec(), inj, EvalParams{});
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return "";
}

TEST(InjectionValidation, NonFiniteScaleThrowsNamedError) {
    for (double bad : {kNan, kInf, -kInf, -0.5}) {
        InjectionParams inj;
        inj.injection_scale = bad;
        const std::string msg = thrown_message(inj);
        EXPECT_NE(msg.find("injection_scale"), std::string::npos)
            << "scale=" << bad << " message: " << msg;
    }
    InjectionParams ok;
    ok.injection_scale = 0.0;  // boundary: zero offered load is valid
    EXPECT_EQ(thrown_message(ok), "");
}

TEST(InjectionValidation, NonFiniteHotspotFactorThrowsNamedError) {
    for (double bad : {kNan, kInf, -1.0}) {
        InjectionParams inj;
        inj.traffic = Traffic::Hotspot;
        inj.hotspot_factor = bad;
        const std::string msg = thrown_message(inj);
        EXPECT_NE(msg.find("hotspot_factor"), std::string::npos)
            << "factor=" << bad << " message: " << msg;
    }
}

TEST(InjectionValidation, OutOfRangeHotspotCoreThrowsWithId) {
    InjectionParams inj;
    inj.traffic = Traffic::Hotspot;
    inj.hotspot_core = 7;  // spec has cores 0..3
    const std::string msg = thrown_message(inj);
    EXPECT_NE(msg.find("hotspot_core"), std::string::npos) << msg;
    EXPECT_NE(msg.find("7"), std::string::npos)
        << "message should carry the offending id: " << msg;
    inj.hotspot_core = 4;  // first invalid id
    EXPECT_NE(thrown_message(inj).find("hotspot_core"), std::string::npos);
    inj.hotspot_core = -5;  // only -1 means autoselect
    EXPECT_NE(thrown_message(inj).find("hotspot_core"), std::string::npos);
    inj.hotspot_core = 3;  // last valid id
    EXPECT_EQ(thrown_message(inj), "");
    inj.hotspot_core = -1;  // busiest-sink autoselect
    EXPECT_EQ(thrown_message(inj), "");
}

TEST(InjectionValidation, UniformTrafficIgnoresHotspotKnobs) {
    // The hotspot knobs are dormant outside hotspot traffic; validating
    // them there would reject sweeps that only vary `traffic`.
    InjectionParams inj;
    inj.traffic = Traffic::Uniform;
    inj.hotspot_core = 99;
    inj.hotspot_factor = kNan;
    EXPECT_EQ(thrown_message(inj), "");
}

TEST(InjectionValidation, NonFiniteBurstProbabilitiesThrowNamedError) {
    const DesignSpec spec = small_spec();
    for (double bad : {kNan, 0.0, -0.1, 1.5}) {
        InjectionParams inj;
        inj.traffic = Traffic::Bursty;
        inj.burst_on_to_off = bad;
        EXPECT_THROW(InjectionState(spec, inj, EvalParams{}),
                     std::invalid_argument)
            << "burst_on_to_off=" << bad;
        inj = InjectionParams{};
        inj.traffic = Traffic::Bursty;
        inj.burst_off_to_on = bad;
        EXPECT_THROW(InjectionState(spec, inj, EvalParams{}),
                     std::invalid_argument)
            << "burst_off_to_on=" << bad;
    }
}

TEST(InjectionValidation, HotspotBoostsFlowsIntoHotspotCore) {
    // With the range check in place the boost must actually land on the
    // flows sinking at the chosen core (and only those).
    InjectionParams uni;
    const std::vector<double> base =
        sim::flow_packet_rates(small_spec(), uni, EvalParams{});
    InjectionParams hot;
    hot.traffic = Traffic::Hotspot;
    hot.hotspot_core = 0;  // flow 2 (3->0) sinks there
    hot.hotspot_factor = 3.0;
    const std::vector<double> boosted =
        sim::flow_packet_rates(small_spec(), hot, EvalParams{});
    EXPECT_DOUBLE_EQ(boosted[0], base[0]);
    EXPECT_DOUBLE_EQ(boosted[1], base[1]);
    EXPECT_DOUBLE_EQ(boosted[2], 3.0 * base[2]);
}

TEST(InjectionDraw, BoolThresholdMatchesNextDouble) {
    // (u >> 11) < bool_threshold(p) must decide exactly like
    // next_double() < p for the same draw u (see the proof at the
    // declaration). Replay one RNG twice and compare decision streams.
    for (double p : {0.0, 1e-9, 0.1, 0.5, 0.9999999, 1.0}) {
        const std::uint64_t thr = InjectionState::bool_threshold(p);
        Rng a(7), b(7);
        for (int i = 0; i < 2000; ++i) {
            const bool via_threshold = (a.next_u64() >> 11) < thr;
            const bool via_double = b.next_double() < p;
            ASSERT_EQ(via_threshold, via_double) << "p=" << p;
        }
    }
}

TEST(InjectionDraw, DrawCycleMatchesPerFlowSteps) {
    // draw_cycle batches the per-flow Bernoulli draws of one cycle; it
    // must consume the identical RNG stream and produce the identical
    // hit set as the step()-per-flow reference, for every traffic model
    // (the simulator's replayability rests on this).
    const DesignSpec spec = small_spec();
    for (Traffic t : {Traffic::Uniform, Traffic::Bursty, Traffic::Hotspot}) {
        InjectionParams inj;
        inj.traffic = t;
        inj.injection_scale = 1.3;  // overload: nontrivial hit rates
        InjectionState batched(spec, inj, EvalParams{});
        InjectionState stepped(spec, inj, EvalParams{});
        Rng ra(99), rb(99);
        std::vector<int> hits(
            static_cast<std::size_t>(batched.num_flows()));
        for (int cycle = 0; cycle < 5000; ++cycle) {
            const int nh = batched.draw_cycle(ra, hits.data());
            std::vector<int> expect;
            for (int f = 0; f < stepped.num_flows(); ++f)
                if (stepped.step(f, rb)) expect.push_back(f);
            ASSERT_EQ(std::vector<int>(hits.begin(), hits.begin() + nh),
                      expect)
                << "cycle " << cycle;
            ASSERT_EQ(ra.next_u64(), rb.next_u64()) << "cycle " << cycle;
        }
    }
}

}  // namespace
}  // namespace sunfloor
