// Property test for incremental re-synthesis: the explorer driving a
// shared SynthesisSession is bit-identical to from-scratch run_synthesis
// at every grid point, under both evaluation backends and multiple thread
// counts — and on a frequency-only grid the sharing is visible as
// stage-cache hits.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return cfg;
}

ParamGrid full_grid() {
    // Two theta values on purpose: points then carry two distinct
    // synthesis seeds, so the shared session mixes artifacts from
    // different RNG streams — the region where stale-RNG leaks between
    // points would show up as divergence from the stateless runs.
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({350e6, 450e6}));
    grid.set_axis(ParamAxis::link_widths_bits({32, 64}));
    grid.set_axis(ParamAxis::thetas({1.0, 4.0}));
    return grid;
}

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_results(const SynthesisResult& a, const SynthesisResult& b) {
    EXPECT_EQ(a.phase_used, b.phase_used);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t d = 0; d < a.points.size(); ++d) {
        const auto& da = a.points[d];
        const auto& db = b.points[d];
        EXPECT_EQ(da.valid, db.valid);
        EXPECT_EQ(da.switch_count, db.switch_count);
        EXPECT_EQ(da.phase, db.phase);
        EXPECT_TRUE(bitwise_equal(da.theta, db.theta));
        EXPECT_EQ(da.fail_reason, db.fail_reason);
        EXPECT_EQ(da.topo.num_links(), db.topo.num_links());
        EXPECT_TRUE(bitwise_equal(da.report.power.total_mw(),
                                  db.report.power.total_mw()));
        EXPECT_TRUE(bitwise_equal(da.report.avg_latency_cycles,
                                  db.report.avg_latency_cycles));
        EXPECT_TRUE(bitwise_equal(da.report.noc_area_mm2(),
                                  db.report.noc_area_mm2()));
    }
}

/// Explorer results (synthesis outcomes, sim reports, merged front) must
/// be bit-identical between two runs, whatever their thread count or
/// reuse mode.
void expect_same_explore(const ExploreResult& a, const ExploreResult& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].seed, b.points[i].seed);
        EXPECT_EQ(a.points[i].synth_seed, b.points[i].synth_seed);
        expect_same_results(a.points[i].result, b.points[i].result);
        ASSERT_EQ(a.points[i].sim_reports.size(),
                  b.points[i].sim_reports.size());
        for (std::size_t d = 0; d < a.points[i].sim_reports.size(); ++d) {
            const auto& ra = a.points[i].sim_reports[d];
            const auto& rb = b.points[i].sim_reports[d];
            EXPECT_EQ(ra.cycles_run, rb.cycles_run);
            EXPECT_EQ(ra.received_packets, rb.received_packets);
            EXPECT_TRUE(bitwise_equal(ra.avg_latency_cycles,
                                      rb.avg_latency_cycles));
            EXPECT_TRUE(bitwise_equal(ra.p99_latency_cycles,
                                      rb.p99_latency_cycles));
        }
    }
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].point_index, b.pareto[i].point_index);
        EXPECT_EQ(a.pareto[i].design_index, b.pareto[i].design_index);
    }
    std::ostringstream ca, cb;
    explore_table(a).write_csv(ca);
    explore_table(b).write_csv(cb);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(PipelineEquivalence, SessionMatchesFromScratchAtEveryGridPoint) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ExploreOptions opts;
    opts.num_threads = 1;
    const Explorer explorer(spec, fast_cfg(), opts);
    const ExploreResult res = explorer.run(full_grid());
    EXPECT_GT(res.stats.valid_designs, 0);

    for (const auto& pr : res.points) {
        SynthesisConfig cfg = pr.point.apply(fast_cfg());
        cfg.seed = pr.synth_seed;
        const SynthesisResult scratch =
            run_synthesis(spec, cfg, pr.point.phase);
        expect_same_results(pr.result, scratch);
    }
}

TEST(PipelineEquivalence, ThreadCountsAndReuseModesAgreeAnalytic) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ExploreOptions serial;
    serial.num_threads = 1;
    const ExploreResult ref =
        Explorer(spec, fast_cfg(), serial).run(full_grid());

    for (int threads : {2, 4}) {
        ExploreOptions par;
        par.num_threads = threads;
        expect_same_explore(
            ref, Explorer(spec, fast_cfg(), par).run(full_grid()));
    }
    ExploreOptions no_reuse;
    no_reuse.num_threads = 2;
    no_reuse.reuse_stages = false;
    const ExploreResult cold =
        Explorer(spec, fast_cfg(), no_reuse).run(full_grid());
    expect_same_explore(ref, cold);
    // Without the shared session there is no stage traffic at all.
    EXPECT_EQ(cold.stats.stage.partition.calls(), 0);
}

TEST(PipelineEquivalence, ThreadCountsAndReuseModesAgreeSimulated) {
    const DesignSpec spec = make_benchmark("D_36_4");
    auto opts = [](int threads, bool reuse) {
        ExploreOptions o;
        o.num_threads = threads;
        o.reuse_stages = reuse;
        o.backend = EvalBackend::Simulated;
        o.sim.warmup_cycles = 200;
        o.sim.measure_cycles = 1000;
        return o;
    };
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({350e6, 450e6}));
    grid.set_axis(ParamAxis::thetas({4.0}));

    const ExploreResult ref =
        Explorer(spec, fast_cfg(), opts(1, true)).run(grid);
    EXPECT_GT(ref.stats.simulated_designs, 0);
    expect_same_explore(ref,
                        Explorer(spec, fast_cfg(), opts(4, true)).run(grid));
    expect_same_explore(ref,
                        Explorer(spec, fast_cfg(), opts(2, false)).run(grid));
}

TEST(PipelineEquivalence, FrequencyOnlyGridReusesStages) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz(
        {300e6, 350e6, 400e6, 450e6, 500e6, 550e6}));

    ExploreOptions serial;
    serial.num_threads = 1;
    const Explorer explorer(spec, fast_cfg(), serial);
    const ExploreResult res = explorer.run(grid);

    // All six points share the partition inputs (auto phase, theta
    // sweep), so every one after the first reuses the base partitions.
    const auto& sg = res.stats.stage;
    EXPECT_GT(sg.partition.hits, 0);
    EXPECT_GT(sg.partition.misses, 0);
    EXPECT_EQ(sg.partition.calls(), sg.partition.hits + sg.partition.misses);
    for (std::size_t i = 1; i < res.points.size(); ++i)
        EXPECT_EQ(res.points[i].synth_seed, res.points[0].synth_seed);

    // A parallel run still reuses (counters are a lower bound there) and
    // stays bit-identical.
    ExploreOptions par;
    par.num_threads = 3;
    const ExploreResult par_res =
        Explorer(spec, fast_cfg(), par).run(grid);
    expect_same_explore(res, par_res);
    EXPECT_GT(par_res.stats.stage.partition.hits, 0);
}

TEST(PipelineEquivalence, PointCacheHitsCauseNoStageTraffic) {
    const DesignSpec spec = make_benchmark("D_36_4");
    ParamGrid grid;
    grid.set_axis(ParamAxis::thetas({4.0}));
    ExploreOptions serial;
    serial.num_threads = 1;
    const Explorer explorer(spec, fast_cfg(), serial);
    const ExploreResult first = explorer.run(grid);
    EXPECT_GT(first.stats.stage.partition.calls(), 0);
    const ExploreResult second = explorer.run(grid);
    EXPECT_EQ(second.stats.cache_hits, 1);
    EXPECT_EQ(second.stats.stage.partition.calls(), 0);
    EXPECT_EQ(second.stats.stage.evaluation.calls(), 0);
}

}  // namespace
}  // namespace sunfloor
