// Unit tests for the worker pool under the exploration engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sunfloor/util/thread_pool.h"

namespace sunfloor {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(),
                      [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndFewerItemsThanThreads) {
    ThreadPool pool(8);
    pool.parallel_for(0, [](std::size_t) { FAIL(); });
    std::atomic<int> count{0};
    pool.parallel_for(3, [&count](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    for (int round = 0; round < 5; ++round)
        pool.parallel_for(100, [&sum](std::size_t i) {
            sum += static_cast<long>(i);
        });
    EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&count](std::size_t i) {
                                       if (i == 17)
                                           throw std::runtime_error("boom");
                                       ++count;
                                   }),
                 std::runtime_error);
    // Indices claimed before the failure ran; the rest were abandoned.
    EXPECT_GE(count.load(), 17);
    EXPECT_LE(count.load(), 99);
    // The pool stays usable afterwards.
    const int before = count.load();
    pool.parallel_for(10, [&count](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), before + 10);
}

TEST(ThreadPool, SubmittedTaskExceptionDoesNotWedgeThePool) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([] { throw std::runtime_error("dropped"); });
    pool.submit([&count] { ++count; });
    pool.wait_idle();  // must not hang on the failed task's busy count
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
    EXPECT_GE(ThreadPool::default_thread_count(), 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.num_threads(), ThreadPool::default_thread_count());
}

}  // namespace
}  // namespace sunfloor
