// Tests for the dense two-phase simplex solver against hand-solved LPs.
#include <gtest/gtest.h>

#include "sunfloor/lp/simplex.h"

namespace sunfloor {
namespace {

TEST(Simplex, SimpleMaximizationAsMinimization) {
    // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
    // Optimum at (2, 2): objective -10.
    LpProblem lp;
    const int x = lp.add_variable(-3.0);
    const int y = lp.add_variable(-2.0);
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0);
    lp.add_constraint({{x, 1.0}}, Relation::LessEq, 2.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.objective, -10.0, 1e-9);
    EXPECT_NEAR(res.x[x], 2.0, 1e-9);
    EXPECT_NEAR(res.x[y], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
    // min x + y s.t. x + y = 3, x - y = 1 -> x=2, y=1.
    LpProblem lp;
    const int x = lp.add_variable(1.0);
    const int y = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
    lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 1.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.x[x], 2.0, 1e-9);
    EXPECT_NEAR(res.x[y], 1.0, 1e-9);
    EXPECT_NEAR(res.objective, 3.0, 1e-9);
}

TEST(Simplex, GreaterEqWithNegativeRhs) {
    // min x s.t. x >= -5 (vacuous, x >= 0 binds) -> 0.
    LpProblem lp;
    const int x = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}}, Relation::GreaterEq, -5.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.x[x], 0.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
    // x <= 1 and x >= 2 cannot both hold.
    LpProblem lp;
    const int x = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
    lp.add_constraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
    // min -x with no upper bound on x.
    LpProblem lp;
    lp.add_variable(-1.0);
    EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
    // Several redundant constraints through the same vertex.
    LpProblem lp;
    const int x = lp.add_variable(-1.0);
    const int y = lp.add_variable(-1.0);
    lp.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
    lp.add_constraint({{x, 1.0}, {y, 0.0}}, Relation::LessEq, 1.0);
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 2.0);
    lp.add_constraint({{y, 1.0}}, Relation::LessEq, 1.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.objective, -2.0, 1e-9);
}

TEST(Simplex, AbsValueLinearization) {
    // min |x - 3| via d >= x-3, d >= 3-x; x free to sit anywhere in [0,10].
    LpProblem lp;
    const int x = lp.add_variable(0.0);
    const int d = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}, {d, -1.0}}, Relation::LessEq, 3.0);
    lp.add_constraint({{x, 1.0}, {d, 1.0}}, Relation::GreaterEq, 3.0);
    lp.add_constraint({{x, 1.0}}, Relation::LessEq, 10.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.objective, 0.0, 1e-9);
    EXPECT_NEAR(res.x[x], 3.0, 1e-9);
}

TEST(Simplex, RepeatedTermsAreSummed) {
    // x + x <= 4  ->  x <= 2; min -x -> x = 2.
    LpProblem lp;
    const int x = lp.add_variable(-1.0);
    lp.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::LessEq, 4.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_NEAR(res.x[x], 2.0, 1e-9);
}

TEST(Simplex, SolutionIsFeasible) {
    LpProblem lp;
    const int x = lp.add_variable(2.0);
    const int y = lp.add_variable(3.0);
    const int z = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}, {y, 2.0}, {z, 1.0}}, Relation::GreaterEq, 10.0);
    lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::LessEq, 4.0);
    lp.add_constraint({{z, 1.0}}, Relation::LessEq, 3.0);
    const auto res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::Optimal);
    EXPECT_TRUE(lp.is_feasible(res.x));
}

TEST(LpModel, BadVariableRejected) {
    LpProblem lp;
    lp.add_variable(1.0);
    EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::LessEq, 1.0),
                 std::out_of_range);
}

TEST(LpModel, ObjectiveValue) {
    LpProblem lp;
    lp.add_variable(2.0);
    lp.add_variable(-1.0);
    EXPECT_DOUBLE_EQ(lp.objective_value({3.0, 4.0}), 2.0);
}

TEST(LpModel, FeasibilityCheck) {
    LpProblem lp;
    const int x = lp.add_variable(1.0);
    lp.add_constraint({{x, 1.0}}, Relation::Equal, 2.0);
    EXPECT_TRUE(lp.is_feasible({2.0}));
    EXPECT_FALSE(lp.is_feasible({2.1}));
    EXPECT_FALSE(lp.is_feasible({-1.0}));
}

}  // namespace
}  // namespace sunfloor
