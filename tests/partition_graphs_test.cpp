// Tests for PG / SPG / LPG construction (Definitions 3-5, Eq. 1).
#include <gtest/gtest.h>

#include "sunfloor/core/partition_graphs.h"

namespace sunfloor {
namespace {

TEST(PgWeight, Formula) {
    // h = alpha * bw/max_bw + (1-alpha) * min_lat/lat.
    EXPECT_DOUBLE_EQ(pg_edge_weight(50, 10, 100, 5, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(pg_edge_weight(50, 10, 100, 5, 0.0), 0.5);
    EXPECT_DOUBLE_EQ(pg_edge_weight(50, 10, 100, 5, 0.5), 0.5);
    // Unconstrained latency contributes nothing.
    EXPECT_DOUBLE_EQ(pg_edge_weight(50, 0, 100, 5, 0.5), 0.25);
}

TEST(Pg, BuildFromCommSpec) {
    CommSpec comm;
    comm.add_flow({0, 1, 100, 4, FlowType::Request});
    comm.add_flow({1, 2, 50, 8, FlowType::Request});
    const Digraph pg = build_partition_graph(comm, 3, 1.0);
    EXPECT_EQ(pg.num_vertices(), 3);
    EXPECT_EQ(pg.num_edges(), 2);
    EXPECT_DOUBLE_EQ(pg.edge(*pg.find_edge(0, 1)).weight, 1.0);
    EXPECT_DOUBLE_EQ(pg.edge(*pg.find_edge(1, 2)).weight, 0.5);
}

TEST(Pg, AlphaBlendsLatency) {
    CommSpec comm;
    comm.add_flow({0, 1, 100, 4, FlowType::Request});   // max bw, min lat
    comm.add_flow({1, 2, 50, 8, FlowType::Request});
    const Digraph pg = build_partition_graph(comm, 3, 0.5);
    // Edge (1,2): 0.5*0.5 + 0.5*(4/8) = 0.5.
    EXPECT_DOUBLE_EQ(pg.edge(*pg.find_edge(1, 2)).weight, 0.5);
    // Edge (0,1): 0.5*1 + 0.5*1 = 1.
    EXPECT_DOUBLE_EQ(pg.edge(*pg.find_edge(0, 1)).weight, 1.0);
}

TEST(Spg, InterLayerEdgesScaledDown) {
    CommSpec comm;
    comm.add_flow({0, 1, 100, 0, FlowType::Request});  // cross-layer
    comm.add_flow({2, 3, 100, 0, FlowType::Request});  // same layer
    const Digraph pg = build_partition_graph(comm, 4, 1.0);
    const std::vector<int> layer{0, 1, 0, 0};
    const double theta = 10.0;
    const Digraph spg = build_scaled_partition_graph(pg, layer, theta, 15.0);
    // Cross-layer edge: 1.0 / (10 * 1) = 0.1.
    EXPECT_NEAR(spg.edge(*spg.find_edge(0, 1)).weight, 0.1, 1e-12);
    // Same-layer PG edge keeps its weight.
    EXPECT_NEAR(spg.edge(*spg.find_edge(2, 3)).weight, 1.0, 1e-12);
}

TEST(Spg, NewSameLayerEdgesBounded) {
    // Eq. 1: new edges weigh theta * max_wt / (10 * theta_max) — at most
    // one tenth of PG's max weight.
    CommSpec comm;
    comm.add_flow({0, 1, 100, 0, FlowType::Request});
    const Digraph pg = build_partition_graph(comm, 4, 1.0);
    const std::vector<int> layer{0, 0, 0, 0};
    for (double theta : {1.0, 7.0, 15.0}) {
        const Digraph spg =
            build_scaled_partition_graph(pg, layer, theta, 15.0);
        const auto e23 = spg.find_edge(2, 3);
        ASSERT_TRUE(e23.has_value()) << "theta " << theta;
        const double expected = theta * 1.0 / (10.0 * 15.0);
        EXPECT_NEAR(spg.edge(*e23).weight, expected, 1e-12);
        EXPECT_LE(spg.edge(*e23).weight, 0.1 + 1e-12);
    }
}

TEST(Spg, NoNewEdgesAcrossLayers) {
    CommSpec comm;
    comm.add_flow({0, 1, 100, 0, FlowType::Request});
    const Digraph pg = build_partition_graph(comm, 4, 1.0);
    const std::vector<int> layer{0, 0, 1, 1};
    const Digraph spg = build_scaled_partition_graph(pg, layer, 10.0, 15.0);
    // 0 and 2 are on different layers, never connected in PG -> no edge.
    EXPECT_FALSE(spg.find_edge(0, 2).has_value());
    EXPECT_FALSE(spg.find_edge(2, 0).has_value());
}

TEST(Lpg, PerLayerSubgraph) {
    CoreSpec cores;
    auto add = [&](const char* n, int layer) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        cores.add_core(c);
    };
    add("a", 0);
    add("b", 0);
    add("c", 1);
    add("d", 0);
    CommSpec comm;
    comm.add_flow({0, 1, 100, 4, FlowType::Request});  // intra layer 0
    comm.add_flow({0, 2, 200, 4, FlowType::Request});  // inter layer
    const LayerGraph lg = build_layer_partition_graph(comm, cores, 0, 1.0);
    EXPECT_EQ(lg.core_ids, (std::vector<int>{0, 1, 3}));
    // a-b edge present with weight 100/200 = 0.5 (global max_bw = 200).
    EXPECT_NEAR(lg.g.edge(*lg.g.find_edge(0, 1)).weight, 0.5, 1e-12);
}

TEST(Lpg, IsolatedVerticesGetTinyEdges) {
    CoreSpec cores;
    for (int i = 0; i < 3; ++i) {
        Core c;
        c.name = "c" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        c.layer = 0;
        cores.add_core(c);
    }
    CommSpec comm;
    comm.add_flow({0, 1, 100, 0, FlowType::Request});
    // Core 2 talks to nobody in this layer: Definition 5 adds low-weight
    // edges so the partitioner can still place it.
    const LayerGraph lg = build_layer_partition_graph(comm, cores, 0, 1.0);
    EXPECT_GT(lg.g.out_degree(2), 0);
    for (int ei : lg.g.out_edges(2))
        EXPECT_LT(lg.g.edge(ei).weight,
                  lg.g.edge(*lg.g.find_edge(0, 1)).weight * 0.01);
}

TEST(Lpg, EmptyLayer) {
    CoreSpec cores;
    Core c;
    c.name = "only";
    c.width = 1;
    c.height = 1;
    c.layer = 0;
    cores.add_core(c);
    CommSpec comm;
    const LayerGraph lg = build_layer_partition_graph(comm, cores, 3, 1.0);
    EXPECT_TRUE(lg.core_ids.empty());
    EXPECT_EQ(lg.g.num_vertices(), 0);
}

}  // namespace
}  // namespace sunfloor
