// Tests for the path computation (Section VI, Algorithm 3).
#include <gtest/gtest.h>

#include "sunfloor/core/path_compute.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

// 2 layers x 2 cores, one switch per layer pair of cores.
DesignSpec two_layer_spec() {
    DesignSpec spec;
    auto add = [&](const char* n, int layer, double x, double y) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        c.position = {x, y};
        spec.cores.add_core(c);
    };
    add("a0", 0, 0, 0);
    add("a1", 0, 2, 0);
    add("b0", 1, 0, 0);
    add("b1", 1, 2, 0);
    spec.comm.add_flow({0, 1, 100, 0, FlowType::Request});  // intra L0
    spec.comm.add_flow({0, 2, 200, 0, FlowType::Request});  // L0 -> L1
    spec.comm.add_flow({2, 0, 200, 0, FlowType::Response});
    spec.comm.add_flow({3, 1, 150, 0, FlowType::Request});  // L1 -> L0
    return spec;
}

CoreAssignment per_layer_assignment() {
    CoreAssignment a;
    a.core_switch = {0, 0, 1, 1};
    a.switch_layer = {0, 1};
    return a;
}

TEST(PathCompute, RoutesAllFlows) {
    const auto spec = two_layer_spec();
    SynthesisConfig cfg;
    Topology topo = build_initial_topology(spec, per_layer_assignment());
    const auto res = compute_paths(topo, spec, cfg);
    EXPECT_TRUE(res.ok) << res.failed_flows.size();
    EXPECT_TRUE(topo.all_flows_routed());
    EXPECT_TRUE(is_routing_deadlock_free(topo));
    EXPECT_TRUE(is_message_dependent_deadlock_free(topo, spec.comm));
    EXPECT_TRUE(classes_are_separated(topo, spec.comm));
}

TEST(PathCompute, IntraSwitchFlowIsTwoLinks) {
    const auto spec = two_layer_spec();
    SynthesisConfig cfg;
    Topology topo = build_initial_topology(spec, per_layer_assignment());
    compute_paths(topo, spec, cfg);
    // Flow 0 (a0->a1) stays on switch 0: path = c2s + s2c.
    EXPECT_EQ(topo.flow_path(0).size(), 2u);
}

TEST(PathCompute, MaxIllZeroForbidsVerticalLinks) {
    const auto spec = two_layer_spec();
    SynthesisConfig cfg;
    cfg.max_ill = 0;
    Topology topo = build_initial_topology(spec, per_layer_assignment());
    const auto res = compute_paths(topo, spec, cfg);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.failed_flows.empty());
}

TEST(PathCompute, AdjacentOnlyRestrictsSpans) {
    // 3-layer chain with a flow from layer 0 to layer 2: with multilayer
    // links forbidden, the path must hop through the middle layer switch.
    DesignSpec spec;
    auto add = [&](const char* n, int layer) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        spec.cores.add_core(c);
    };
    add("x0", 0);
    add("x1", 1);
    add("x2", 2);
    spec.comm.add_flow({0, 2, 100, 0, FlowType::Request});
    CoreAssignment assign;
    assign.core_switch = {0, 1, 2};
    assign.switch_layer = {0, 1, 2};

    SynthesisConfig cfg;
    cfg.allow_multilayer_links = false;
    Topology topo = build_initial_topology(spec, assign);
    const auto res = compute_paths(topo, spec, cfg);
    ASSERT_TRUE(res.ok);
    // Path: c2s, s0->s1, s1->s2, s2c -> latency 3 switches.
    EXPECT_EQ(topo.flow_path(0).size(), 4u);
    for (int l = 0; l < topo.num_links(); ++l)
        EXPECT_LE(topo.link_layers_crossed(l), 1);

    // With multilayer links allowed the direct 2-span link wins.
    SynthesisConfig cfg2;
    cfg2.allow_multilayer_links = true;
    Topology topo2 = build_initial_topology(spec, assign);
    ASSERT_TRUE(compute_paths(topo2, spec, cfg2).ok);
    EXPECT_EQ(topo2.flow_path(0).size(), 3u);
}

TEST(PathCompute, CapacitySplitsTrafficOverParallelLinks) {
    // Two heavy flows between the same switch pair exceed one channel:
    // the path computation must open a parallel link.
    DesignSpec spec;
    auto add = [&](const char* n, int layer) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        spec.cores.add_core(c);
    };
    add("p0", 0);
    add("p1", 0);
    add("m0", 0);
    add("m1", 0);
    // 2 x 1000 MB/s > 1600 MB/s channel capacity.
    spec.comm.add_flow({0, 2, 1000, 0, FlowType::Request});
    spec.comm.add_flow({1, 3, 1000, 0, FlowType::Request});
    CoreAssignment assign;
    assign.core_switch = {0, 0, 1, 1};
    assign.switch_layer = {0, 0};
    SynthesisConfig cfg;
    Topology topo = build_initial_topology(spec, assign);
    const auto res = compute_paths(topo, spec, cfg);
    ASSERT_TRUE(res.ok);
    int s2s = 0;
    for (int l = 0; l < topo.num_links(); ++l) {
        const auto& lk = topo.link(l);
        if (lk.src.is_switch() && lk.dst.is_switch()) {
            ++s2s;
            EXPECT_LE(lk.bw_mbps, 1600.0 + 1e-9);
        }
    }
    EXPECT_EQ(s2s, 2);  // parallel request channels
}

TEST(PathCompute, UpDownDisciplineKeepsCdgAcyclicOnBenchmarks) {
    for (const char* name : {"D_26_media", "D_38_tvopd"}) {
        const auto spec = make_benchmark(name);
        SynthesisConfig cfg;
        // Simple assignment: one switch per layer.
        const int layers = spec.cores.num_layers();
        CoreAssignment assign;
        assign.core_switch.resize(spec.cores.num_cores());
        for (int c = 0; c < spec.cores.num_cores(); ++c)
            assign.core_switch[c] = spec.cores.core(c).layer;
        for (int ly = 0; ly < layers; ++ly) assign.switch_layer.push_back(ly);
        Topology topo = build_initial_topology(spec, assign);
        const auto res = compute_paths(topo, spec, cfg);
        // Whatever was routed must be deadlock free.
        EXPECT_TRUE(is_routing_deadlock_free(topo)) << name;
        EXPECT_TRUE(is_message_dependent_deadlock_free(topo, spec.comm))
            << name;
        (void)res;
    }
}

TEST(PathCompute, IndirectSwitchesHelpWhenPortsRunOut) {
    // A hub core talking to many leaves with a tiny max switch size is the
    // scenario indirect switches exist for. We force it by running at a
    // frequency where max_switch_size is small.
    DesignSpec spec;
    auto add = [&](const std::string& n, int layer) {
        Core c;
        c.name = n;
        c.width = 1;
        c.height = 1;
        c.layer = layer;
        spec.cores.add_core(c);
    };
    const int kLeaves = 8;
    add("hub", 0);
    for (int i = 0; i < kLeaves; ++i) add("leaf" + std::to_string(i), 0);
    for (int i = 0; i < kLeaves; ++i)
        spec.comm.add_flow({0, 1 + i, 50, 0, FlowType::Request});
    // One switch per core: the hub's switch needs kLeaves out-links.
    CoreAssignment assign;
    for (int c = 0; c < spec.cores.num_cores(); ++c) {
        assign.core_switch.push_back(c);
        assign.switch_layer.push_back(0);
    }
    SynthesisConfig cfg;
    cfg.eval.freq_hz = 900e6;  // max switch size ~4 at this speed
    Topology topo = build_initial_topology(spec, assign);
    const auto res = compute_paths(topo, spec, cfg);
    // Either the router chains through leaf switches within the size
    // budget, or it inserts indirect switches; both must end with every
    // flow routed and every switch legal.
    EXPECT_TRUE(res.ok);
    EXPECT_GE(res.indirect_switches_added, 0);
    const int max_sw = cfg.eval.lib.max_switch_size(cfg.eval.freq_hz);
    for (int s = 0; s < topo.num_switches(); ++s) {
        EXPECT_LE(topo.switch_in_degree(s), max_sw);
        EXPECT_LE(topo.switch_out_degree(s), max_sw);
    }
}

}  // namespace
}  // namespace sunfloor
