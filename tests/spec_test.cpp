// Tests for core/communication specifications and the text parser.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "sunfloor/spec/parser.h"

namespace sunfloor {
namespace {

Core make_core(const std::string& name, double w, double h, int layer) {
    Core c;
    c.name = name;
    c.width = w;
    c.height = h;
    c.layer = layer;
    return c;
}

TEST(CoreSpec, AddAndFind) {
    CoreSpec cs;
    EXPECT_EQ(cs.add_core(make_core("a", 1, 1, 0)), 0);
    EXPECT_EQ(cs.add_core(make_core("b", 2, 1, 1)), 1);
    EXPECT_EQ(cs.find("b"), 1);
    EXPECT_EQ(cs.find("zz"), -1);
    EXPECT_EQ(cs.num_layers(), 2);
}

TEST(CoreSpec, RejectsDuplicatesAndBadSizes) {
    CoreSpec cs;
    cs.add_core(make_core("a", 1, 1, 0));
    EXPECT_THROW(cs.add_core(make_core("a", 1, 1, 0)), std::invalid_argument);
    EXPECT_THROW(cs.add_core(make_core("b", 0, 1, 0)), std::invalid_argument);
    EXPECT_THROW(cs.add_core(make_core("c", 1, 1, -1)), std::invalid_argument);
}

TEST(CoreSpec, LayerQueries) {
    CoreSpec cs;
    cs.add_core(make_core("a", 2, 2, 0));
    cs.add_core(make_core("b", 1, 1, 0));
    cs.add_core(make_core("c", 3, 1, 1));
    EXPECT_EQ(cs.cores_in_layer(0), (std::vector<int>{0, 1}));
    EXPECT_DOUBLE_EQ(cs.layer_area(0), 5.0);
    EXPECT_DOUBLE_EQ(cs.layer_area(1), 3.0);
}

TEST(CoreSpec, FlattenTo2d) {
    CoreSpec cs;
    cs.add_core(make_core("a", 1, 1, 0));
    cs.add_core(make_core("b", 1, 1, 2));
    const CoreSpec flat = cs.flattened_to_2d();
    EXPECT_EQ(flat.num_layers(), 1);
    EXPECT_EQ(flat.num_cores(), 2);
}

TEST(CoreSpec, PlacementLegality) {
    CoreSpec cs;
    cs.add_core(make_core("a", 2, 2, 0));
    cs.add_core(make_core("b", 2, 2, 0));
    cs.core(1).position = {1.0, 1.0};  // overlaps core 0
    EXPECT_FALSE(cs.placement_is_legal());
    cs.core(1).position = {2.0, 0.0};  // abutting is legal
    EXPECT_TRUE(cs.placement_is_legal());
    cs.core(1).layer = 1;  // different layers never conflict
    cs.core(1).position = {0.0, 0.0};
    EXPECT_TRUE(cs.placement_is_legal());
}

TEST(CommSpec, FlowValidation) {
    CommSpec comm;
    Flow f;
    f.src = 0;
    f.dst = 0;
    EXPECT_THROW(comm.add_flow(f), std::invalid_argument);
    f.dst = 1;
    f.bw_mbps = -1.0;
    EXPECT_THROW(comm.add_flow(f), std::invalid_argument);
    f.bw_mbps = 10.0;
    EXPECT_EQ(comm.add_flow(f), 0);
}

TEST(CommSpec, RejectsNonFiniteBandwidthAndLatency) {
    // A NaN bandwidth passes a bare `bw < 0` check (NaN comparisons are
    // false) and then poisons max_bw/total_bw and Pareto ranking; the
    // guard must be explicit.
    CommSpec comm;
    Flow f;
    f.src = 0;
    f.dst = 1;
    f.bw_mbps = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(comm.add_flow(f), std::invalid_argument);
    f.bw_mbps = std::numeric_limits<double>::infinity();
    EXPECT_THROW(comm.add_flow(f), std::invalid_argument);
    f.bw_mbps = 10.0;
    f.max_latency_cycles = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(comm.add_flow(f), std::invalid_argument);
    f.max_latency_cycles = 5.0;
    EXPECT_EQ(comm.add_flow(f), 0);
    EXPECT_DOUBLE_EQ(comm.max_bw(), 10.0);   // aggregates stayed clean
    EXPECT_DOUBLE_EQ(comm.total_bw(), 10.0);
}

TEST(CoreSpec, RejectsNonFiniteGeometry) {
    CoreSpec cs;
    Core c = make_core("nanw", std::numeric_limits<double>::quiet_NaN(),
                       1.0, 0);
    EXPECT_THROW(cs.add_core(c), std::invalid_argument);
    c = make_core("infh", 1.0, std::numeric_limits<double>::infinity(), 0);
    EXPECT_THROW(cs.add_core(c), std::invalid_argument);
    c = make_core("nanp", 1.0, 1.0, 0);
    c.position.x = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(cs.add_core(c), std::invalid_argument);
    EXPECT_EQ(cs.num_cores(), 0);
}

TEST(CommSpec, Aggregates) {
    CommSpec comm;
    comm.add_flow({0, 1, 100.0, 5.0, FlowType::Request});
    comm.add_flow({1, 0, 300.0, 0.0, FlowType::Response});
    comm.add_flow({2, 0, 50.0, 3.0, FlowType::Request});
    EXPECT_DOUBLE_EQ(comm.max_bw(), 300.0);
    EXPECT_DOUBLE_EQ(comm.min_lat(), 3.0);  // unconstrained flow ignored
    EXPECT_DOUBLE_EQ(comm.total_bw(), 450.0);
}

TEST(CommSpec, CommunicationGraphMergesParallelFlows) {
    CommSpec comm;
    comm.add_flow({0, 1, 100.0, 5.0, FlowType::Request});
    comm.add_flow({0, 1, 50.0, 5.0, FlowType::Request});
    const Digraph g = comm.communication_graph(3);
    EXPECT_EQ(g.num_edges(), 1);
    EXPECT_DOUBLE_EQ(g.edge(0).weight, 150.0);
    EXPECT_THROW(comm.communication_graph(1), std::out_of_range);
}

TEST(CommSpec, InterLayerFlows) {
    CommSpec comm;
    comm.add_flow({0, 1, 1.0, 0.0, FlowType::Request});
    comm.add_flow({1, 2, 1.0, 0.0, FlowType::Request});
    const std::vector<int> layer{0, 0, 1};
    EXPECT_EQ(comm.inter_layer_flows(layer), (std::vector<int>{1}));
}

TEST(Parser, RoundTrip) {
    const char* text =
        "# comment\n"
        "core arm0 1.2 1.0 0.0 0.0 0\n"
        "core mem0 0.8 0.8 1.3 0.0 1\n"
        "flow arm0 mem0 400 6 req\n"
        "flow mem0 arm0 400 8 rsp\n";
    std::istringstream is(text);
    const auto r = parse_design(is, "t");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.spec.cores.num_cores(), 2);
    EXPECT_EQ(r.spec.comm.num_flows(), 2);
    EXPECT_EQ(r.spec.comm.flow(1).type, FlowType::Response);
    EXPECT_DOUBLE_EQ(r.spec.cores.core(1).position.x, 1.3);

    std::ostringstream os;
    write_design(os, r.spec);
    std::istringstream is2(os.str());
    const auto r2 = parse_design(is2, "t2");
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.spec.cores.num_cores(), 2);
    EXPECT_EQ(r2.spec.comm.num_flows(), 2);
    EXPECT_DOUBLE_EQ(r2.spec.comm.flow(0).bw_mbps, 400.0);
}

TEST(Parser, Errors) {
    auto expect_fail = [](const char* text, const char* what) {
        std::istringstream is(text);
        const auto r = parse_design(is);
        EXPECT_FALSE(r.ok) << what;
        EXPECT_FALSE(r.error.empty());
    };
    expect_fail("core a 1 1 0 0\n", "missing layer field");
    expect_fail("core a x 1 0 0 0\n", "bad number");
    expect_fail("flow a b 1 1 req\n", "undeclared cores");
    expect_fail("core a 1 1 0 0 0\ncore b 1 1 0 0 0\nflow a b 1 1 zzz\n",
                "bad flow type");
    expect_fail("bogus line here\n", "unknown directive");
    expect_fail("core a 1 1 0 0 0\ncore a 1 1 0 0 0\n", "duplicate core");
}

// Every error path must name the offending line: a fuzzed or mutated
// 1000-line spec is undebuggable from "malformed fields" alone.
TEST(Parser, ErrorsNameTheOffendingLine) {
    const auto error_of = [](const char* text) {
        std::istringstream is(text);
        const auto r = parse_design(is);
        EXPECT_FALSE(r.ok) << text;
        return r.error;
    };
    const char* two_cores = "core a 1 1 0 0 0\ncore b 1 1 0 0 0\n";

    // Duplicate flow lines (same src, dst and type) name both lines.
    const std::string dup = error_of(
        ("# hdr\n" + std::string(two_cores) +
         "flow a b 1 1 req\nflow a b 2 2 req\n")
            .c_str());
    EXPECT_NE(dup.find("line 5"), std::string::npos) << dup;
    EXPECT_NE(dup.find("duplicate flow"), std::string::npos) << dup;
    EXPECT_NE(dup.find("line 4"), std::string::npos) << dup;

    // Same pair with a different type is NOT a duplicate (req + rsp).
    std::istringstream ok_is(std::string(two_cores) +
                             "flow a b 1 1 req\nflow a b 1 1 rsp\n");
    EXPECT_TRUE(parse_design(ok_is).ok);

    // Undeclared cores are named, with the line.
    const std::string undecl =
        error_of("core a 1 1 0 0 0\nflow a ghost 1 1 req\n");
    EXPECT_NE(undecl.find("line 2"), std::string::npos) << undecl;
    EXPECT_NE(undecl.find("'ghost'"), std::string::npos) << undecl;

    // Out-of-int-range layer: rejected at the parse, naming the line,
    // instead of silently truncating through the long->int cast.
    const std::string trunc = error_of("core a 1 1 0 0 99999999999\n");
    EXPECT_NE(trunc.find("line 1"), std::string::npos) << trunc;

    // In-int-range but absurd layer: rejected with its own message.
    const std::string layer = error_of("core a 1 1 0 0 2000000\n");
    EXPECT_NE(layer.find("line 1"), std::string::npos) << layer;
    EXPECT_NE(layer.find("out of range"), std::string::npos) << layer;

    // Non-finite numbers anywhere are malformed fields, with the line.
    for (const char* text :
         {"core a nan 1 0 0 0\n", "core a 1 inf 0 0 0\n",
          "core a 1 1 0 0 0\ncore b 1 1 0 0 0\nflow a b nan 1 req\n",
          "core a 1 1 0 0 0\ncore b 1 1 0 0 0\nflow a b 1e999 1 req\n",
          "core a 1 1 0 0 0\ncore b 1 1 0 0 0\nflow a b 0x20 1 req\n"}) {
        const std::string err = error_of(text);
        EXPECT_NE(err.find("line "), std::string::npos) << text;
        EXPECT_NE(err.find("malformed"), std::string::npos)
            << text << " -> " << err;
    }
}

TEST(Parser, EmptyInputIsValid) {
    std::istringstream is("\n# nothing\n");
    const auto r = parse_design(is);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.spec.cores.num_cores(), 0);
}

}  // namespace
}  // namespace sunfloor
