// Adaptive in-network output selection: the simulator driven by an
// adaptive RoutingPolicy (west-first / odd-even) must follow the baked
// paths at zero load (tie-break), deviate under contention (that is the
// point of adaptivity), stay bit-deterministic, and always drain — the
// runtime face of the route-set CDG acyclicity proof.
#include <gtest/gtest.h>

#include <cstring>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/routing/policy.h"
#include "sunfloor/sim/simulator.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

using routing::RoutingPolicyId;

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Best valid design of a benchmark synthesized under `policy`.
DesignPoint best_design(const DesignSpec& spec, RoutingPolicyId policy,
                        SynthesisConfig& cfg_out) {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.routing = policy;
    const SynthesisResult res = run_synthesis(spec, cfg);
    const int best = res.best_power_index();
    EXPECT_GE(best, 0);
    cfg_out = cfg;
    return res.points[static_cast<std::size_t>(best)];
}

TEST(RoutingSim, AdaptiveMatchesFixedPathAtZeroLoad) {
    // At vanishing load every downstream buffer is empty, so the
    // credit-aware tie-break always picks the baked path's link: the
    // adaptive engine must reproduce the fixed-path latencies exactly.
    const DesignSpec spec = make_benchmark("D_36_4");
    SynthesisConfig cfg;
    const DesignPoint dp =
        best_design(spec, RoutingPolicyId::WestFirst, cfg);

    sim::SimParams p;
    p.inject.injection_scale = 0.02;  // far below saturation
    p.measure_cycles = 4000;
    sim::SimParams fixed = p;  // default: up-down, replays baked paths
    sim::SimParams adaptive = p;
    adaptive.routing = RoutingPolicyId::WestFirst;

    const sim::SimReport a = sim::simulate(dp.topo, spec, cfg.eval, fixed);
    const sim::SimReport b =
        sim::simulate(dp.topo, spec, cfg.eval, adaptive);
    EXPECT_EQ(a.received_packets, b.received_packets);
    EXPECT_TRUE(bitwise_equal(a.avg_latency_cycles, b.avg_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.p99_latency_cycles, b.p99_latency_cycles));
    EXPECT_TRUE(a.drained);
    EXPECT_TRUE(b.drained);
}

TEST(RoutingSim, AdaptiveShiftsLatencyUnderContention) {
    // Under heavy load the adaptive engine deviates from the baked paths
    // (that is what the enlarged route set buys), so measured latency
    // must differ from the fixed-path replay of the same topology on at
    // least one benchmark.
    int shifted = 0;
    for (const char* name : {"D_36_4", "D_35_bot"}) {
        const DesignSpec spec = make_benchmark(name);
        SynthesisConfig cfg;
        const DesignPoint dp =
            best_design(spec, RoutingPolicyId::OddEven, cfg);

        sim::SimParams p;
        p.inject.injection_scale = 1.5;  // past saturation: real queueing
        p.measure_cycles = 4000;
        sim::SimParams fixed = p;
        sim::SimParams adaptive = p;
        adaptive.routing = RoutingPolicyId::OddEven;

        const sim::SimReport a =
            sim::simulate(dp.topo, spec, cfg.eval, fixed);
        const sim::SimReport b =
            sim::simulate(dp.topo, spec, cfg.eval, adaptive);
        EXPECT_TRUE(a.drained) << name;
        EXPECT_TRUE(b.drained) << name;
        if (!bitwise_equal(a.avg_latency_cycles, b.avg_latency_cycles))
            ++shifted;
    }
    EXPECT_GT(shifted, 0);
}

TEST(RoutingSim, AdaptiveRunsAreBitDeterministic) {
    const DesignSpec spec = make_benchmark("D_26_media");
    SynthesisConfig cfg;
    const DesignPoint dp =
        best_design(spec, RoutingPolicyId::WestFirst, cfg);

    sim::SimParams p;
    p.routing = RoutingPolicyId::WestFirst;
    p.inject.injection_scale = 1.0;
    p.measure_cycles = 3000;
    const sim::SimReport a = sim::simulate(dp.topo, spec, cfg.eval, p);
    const sim::SimReport b = sim::simulate(dp.topo, spec, cfg.eval, p);
    EXPECT_EQ(a.received_packets, b.received_packets);
    EXPECT_EQ(a.cycles_run, b.cycles_run);
    EXPECT_TRUE(bitwise_equal(a.avg_latency_cycles, b.avg_latency_cycles));
    EXPECT_TRUE(bitwise_equal(a.max_latency_cycles, b.max_latency_cycles));
    ASSERT_EQ(a.flow_avg_latency_cycles.size(),
              b.flow_avg_latency_cycles.size());
    for (std::size_t f = 0; f < a.flow_avg_latency_cycles.size(); ++f)
        EXPECT_TRUE(bitwise_equal(a.flow_avg_latency_cycles[f],
                                  b.flow_avg_latency_cycles[f]));
}

TEST(RoutingSim, AdaptivePoliciesDrainUnderStress) {
    // Route-set CDG acyclicity promises freedom from deadlock for *every*
    // in-network choice; overdriving the fabric and requiring a full
    // drain is the runtime cross-check.
    for (RoutingPolicyId id :
         {RoutingPolicyId::WestFirst, RoutingPolicyId::OddEven}) {
        const DesignSpec spec = make_benchmark("D_35_bot");
        SynthesisConfig cfg;
        const DesignPoint dp = best_design(spec, id, cfg);

        sim::SimParams p;
        p.routing = id;
        p.inject.injection_scale = 2.0;
        p.inject.traffic = sim::Traffic::Bursty;
        p.measure_cycles = 3000;
        const sim::SimReport rep =
            sim::simulate(dp.topo, spec, cfg.eval, p);
        EXPECT_TRUE(rep.drained) << routing::routing_to_string(id);
        EXPECT_EQ(rep.in_flight_flits_at_end, 0)
            << routing::routing_to_string(id);
        EXPECT_EQ(rep.injected_packets, rep.received_packets)
            << routing::routing_to_string(id);
    }
}

TEST(RoutingSim, MismatchedAdaptivePolicyIsReported) {
    // Simulating a topology under an *adaptive* policy other than the one
    // it was synthesized with is a configuration error: baked paths fall
    // outside the foreign route set, and build_route_sets reports the
    // mismatch instead of letting packets strand.
    const DesignSpec spec = make_benchmark("D_36_4");
    SynthesisConfig cfg;
    const DesignPoint dp = best_design(spec, RoutingPolicyId::UpDown, cfg);
    sim::SimParams p;
    p.routing = RoutingPolicyId::WestFirst;
    p.measure_cycles = 1000;
    try {
        (void)sim::simulate(dp.topo, spec, cfg.eval, p);
        // Permissible: every baked path of this design happens to lie in
        // west-first's route set too (e.g. all single-hop).
    } catch (const std::logic_error& e) {
        EXPECT_NE(std::string(e.what()).find("does not match"),
                  std::string::npos);
    }
}

TEST(RoutingSim, MismatchedDeterministicPolicyStillReplaysBakedPaths) {
    // SimParams.routing with a *deterministic* policy never consults the
    // automaton at run time — it replays whatever paths the topology
    // carries, so simulating a west-first topology under the default
    // up-down params is the fixed-path baseline used above.
    const DesignSpec spec = make_benchmark("D_36_4");
    SynthesisConfig cfg;
    const DesignPoint dp =
        best_design(spec, RoutingPolicyId::WestFirst, cfg);
    sim::SimParams p;  // default up-down
    p.measure_cycles = 2000;
    const sim::SimReport rep = sim::simulate(dp.topo, spec, cfg.eval, p);
    EXPECT_TRUE(rep.drained);
    EXPECT_GT(rep.received_packets, 0);
}

}  // namespace
}  // namespace sunfloor
