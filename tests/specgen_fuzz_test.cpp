// Fuzz/property harness over the spec path: hundreds of generated specs
// (all three specgen families, randomized knobs) are pushed through
// parsing, full synthesis, zero-load simulation and route-set CDG
// verification. The contract under test:
//
//   * generation + parsing never crash or mis-parse (the input-validation
//     fixes in util/strings.cpp and spec/parser.cpp were found by exactly
//     this kind of fuzzing);
//   * every generated spec either synthesizes or fails with a *diagnosed*
//     error (non-empty fail_reason on every design point — no silent
//     nonsense, no exceptions);
//   * on synthesized designs the two evaluation backends agree at zero
//     load to 1e-6 cycles, the enlarged route-set CDG stays acyclic, and
//     the simulator drains under load on deadlock-free topologies;
//   * mutated (corrupted) spec files are rejected with errors naming the
//     offending line.
//
// The ASan/UBSan CI job runs this suite too, so "no crashes" includes
// "no silent memory errors".
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/graph/algorithms.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/noc/evaluation.h"
#include "sunfloor/routing/policy.h"
#include "sunfloor/routing/route_sets.h"
#include "sunfloor/sim/simulator.h"
#include "sunfloor/spec/parser.h"
#include "sunfloor/specgen/specgen.h"
#include "sunfloor/util/rng.h"
#include "sunfloor/util/strings.h"

namespace sunfloor {
namespace {

using specgen::GenFamily;
using specgen::GenParams;

constexpr GenFamily kFamilies[] = {GenFamily::Pipeline,
                                   GenFamily::HubAndSpoke,
                                   GenFamily::LayeredDag};

constexpr routing::RoutingPolicyId kPolicies[] = {
    routing::RoutingPolicyId::UpDown,
    routing::RoutingPolicyId::WestFirst,
    routing::RoutingPolicyId::OddEven,
};

/// Random-but-valid knobs for one fuzz case (all draws respect
/// GenParams::validate by construction, so every rejection the harness
/// sees downstream is a *synthesis* diagnosis, not a parameter typo).
GenParams random_params(GenFamily fam, Rng& rng) {
    GenParams p;
    p.family = fam;
    p.num_layers = rng.next_int(1, 4);
    p.num_hubs = rng.next_int(1, 3);
    p.num_cores = rng.next_int(p.num_layers + p.num_hubs + 4, 20);
    p.peak_core_bw_mbps = rng.next_int(600, 1200);
    p.bw_skew = rng.next_int(0, 32) / 16.0;  // 0..2 in det_pow16 steps
    p.latency_slack = rng.next_int(10, 25) / 10.0;
    p.response_fraction = rng.next_int(0, 4) / 4.0;
    p.hotspot_fraction = rng.next_int(2, 4) / 4.0;
    p.stages = rng.next_int(2, std::min(6, p.num_cores));
    p.max_fanout = rng.next_int(1, 4);
    return p;
}

std::string spec_text(const DesignSpec& spec) {
    std::ostringstream os;
    write_design(os, spec);
    return os.str();
}

// Generation + parse round trip over many randomized knob draws per
// family — the cheap, wide part of the fuzz budget (several hundred
// specs).
TEST(SpecGenFuzz, RandomKnobsGenerateParseRoundTrip) {
    Rng meta(0xf22);
    for (GenFamily fam : kFamilies) {
        for (int i = 0; i < 100; ++i) {
            const GenParams p = random_params(fam, meta);
            const std::uint64_t seed = meta.next_u64();
            SCOPED_TRACE(format("%s case %d seed %llu cores %d",
                                specgen::family_to_string(fam), i,
                                static_cast<unsigned long long>(seed),
                                p.num_cores));
            const DesignSpec spec = specgen::generate(p, seed);
            const std::string text = spec_text(spec);
            std::istringstream is(text);
            const ParseResult r = parse_design(is, spec.name);
            ASSERT_TRUE(r.ok) << r.error;
            EXPECT_EQ(spec_text(r.spec), text);
        }
    }
}

// The deep part of the budget: full synthesis + sim + CDG verification.
// Every generated spec either yields valid designs or diagnoses every
// failed point; no configuration may crash.
TEST(SpecGenFuzz, SynthesisSimAndRouteSetsHoldOnEveryFamily) {
    Rng meta(2009);
    int synthesized_any = 0;
    for (GenFamily fam : kFamilies) {
        for (int i = 0; i < 10; ++i) {
            const GenParams p = random_params(fam, meta);
            const std::uint64_t seed = meta.next_u64();
            const auto policy = kPolicies[static_cast<std::size_t>(
                (i + static_cast<int>(fam)) % 3)];
            SCOPED_TRACE(format("%s case %d seed %llu cores %d routing %s",
                                specgen::family_to_string(fam), i,
                                static_cast<unsigned long long>(seed),
                                p.num_cores,
                                routing::routing_to_string(policy)));
            const DesignSpec spec = specgen::generate(p, seed);

            SynthesisConfig cfg;
            cfg.run_floorplan = false;
            cfg.max_switches = 5;  // bound the per-spec sweep
            cfg.routing = policy;
            SynthesisResult res;
            ASSERT_NO_THROW(res = run_synthesis(spec, cfg))
                << "synthesis must diagnose, not throw";

            int checked = 0;
            for (const DesignPoint& dp : res.points) {
                if (!dp.valid) {
                    // A failed point is fine — but only with a diagnosis.
                    EXPECT_FALSE(dp.fail_reason.empty())
                        << dp.switch_count << " switches";
                    continue;
                }
                if (!dp.topo.all_flows_routed() || checked >= 2) continue;
                ++checked;
                ++synthesized_any;

                // Backends agree at zero load.
                sim::SimParams zl;
                zl.inject.packet_length_flits = 1;
                const sim::SimReport rep =
                    sim::simulate_zero_load(dp.topo, spec, cfg.eval, zl);
                EXPECT_TRUE(rep.drained);
                for (int f = 0; f < dp.topo.num_flows(); ++f)
                    EXPECT_NEAR(rep.flow_avg_latency_cycles[
                                    static_cast<std::size_t>(f)],
                                flow_latency(dp.topo, f, cfg.eval), 1e-6)
                        << "flow " << f;

                // The policy's *enlarged* adaptive route set stays
                // deadlock-free, not just the baked paths.
                const auto routes = routing::build_route_sets(
                    dp.topo, spec, routing::routing_policy(policy));
                EXPECT_FALSE(has_cycle(routing::build_route_set_cdg(
                    dp.topo, spec, routes)));
                EXPECT_FALSE(has_cycle(
                    routing::build_extended_route_set_cdg(dp.topo, spec,
                                                          routes)));

                // Under real injected load the network must go empty
                // again on statically deadlock-free topologies.
                if (is_message_dependent_deadlock_free(dp.topo,
                                                       spec.comm)) {
                    sim::SimParams sp;
                    sp.routing = policy;
                    sp.inject.injection_scale = 0.3;
                    sp.warmup_cycles = 300;
                    sp.measure_cycles = 1500;
                    const sim::SimReport load =
                        sim::simulate(dp.topo, spec, cfg.eval, sp);
                    EXPECT_TRUE(load.drained)
                        << load.in_flight_flits_at_end
                        << " flits stuck in flight";
                }
            }
        }
    }
    // The harness is vacuous if nothing ever synthesizes.
    EXPECT_GT(synthesized_any, 20);
}

// Mutation audit of the parser's error paths: corrupt generated spec
// files must be rejected with the offending line named — fuzzing found
// exactly these paths silently truncating or accepting non-finite input.
TEST(SpecGenFuzz, MutatedSpecFilesAreRejectedWithNamedLines) {
    GenParams p;
    p.family = GenFamily::HubAndSpoke;
    p.num_cores = 12;
    const DesignSpec spec = specgen::generate(p, 17);
    const std::string text = spec_text(spec);

    // Split into directive lines (drop the header comment), find a flow
    // line to mutate.
    std::vector<std::string> lines;
    for (const auto& l : split(text, '\n'))
        if (!trim(l).empty() && !starts_with(l, "#")) lines.push_back(l);
    int flow_idx = -1;
    for (std::size_t i = 0; i < lines.size(); ++i)
        if (starts_with(lines[i], "flow ")) {
            flow_idx = static_cast<int>(i);
            break;
        }
    ASSERT_GE(flow_idx, 0);

    const auto rejoin = [&](const std::vector<std::string>& ls) {
        std::string out;
        for (const auto& l : ls) {
            out += l;
            out += '\n';
        }
        return out;
    };
    const auto expect_rejected = [&](const std::vector<std::string>& ls,
                                     const char* needle, const char* what) {
        std::istringstream is(rejoin(ls));
        const ParseResult r = parse_design(is);
        EXPECT_FALSE(r.ok) << what;
        EXPECT_NE(r.error.find("line "), std::string::npos)
            << what << ": " << r.error;
        EXPECT_NE(r.error.find(needle), std::string::npos)
            << what << ": " << r.error;
    };

    // 1. Duplicate a flow line verbatim.
    auto mutated = lines;
    mutated.push_back(lines[static_cast<std::size_t>(flow_idx)]);
    expect_rejected(mutated, "duplicate flow", "duplicated flow line");

    // 2. Point a flow at an undeclared core.
    mutated = lines;
    {
        auto tokens = split_ws(mutated[static_cast<std::size_t>(flow_idx)]);
        tokens[2] = "ghost";
        std::string rebuilt;
        for (const auto& t : tokens) rebuilt += t + " ";
        mutated[static_cast<std::size_t>(flow_idx)] = rebuilt;
    }
    expect_rejected(mutated, "'ghost'", "undeclared core");

    // 3. Non-finite and overflowing numbers in a flow's bandwidth.
    for (const char* bad : {"nan", "inf", "1e999", "0x14"}) {
        mutated = lines;
        auto tokens = split_ws(mutated[static_cast<std::size_t>(flow_idx)]);
        tokens[3] = bad;
        std::string rebuilt;
        for (const auto& t : tokens) rebuilt += t + " ";
        mutated[static_cast<std::size_t>(flow_idx)] = rebuilt;
        expect_rejected(mutated, "malformed", bad);
    }

    // 4. Out-of-int-range layer on a core line (the silent-truncation
    // regression).
    mutated = lines;
    {
        auto tokens = split_ws(mutated[0]);
        ASSERT_EQ(tokens[0], "core");
        tokens[6] = "99999999999";
        std::string rebuilt;
        for (const auto& t : tokens) rebuilt += t + " ";
        mutated[0] = rebuilt;
    }
    expect_rejected(mutated, "malformed", "overflowing layer");

    // The unmutated text still parses, so the rejections above are the
    // mutations' doing.
    std::istringstream is(text);
    EXPECT_TRUE(parse_design(is).ok);
}

}  // namespace
}  // namespace sunfloor
