// Unit tests for the exploration parameter grid.
#include <gtest/gtest.h>

#include "sunfloor/explore/param_grid.h"

namespace sunfloor {
namespace {

TEST(ParamGrid, DefaultIsSinglePoint) {
    ParamGrid grid;
    EXPECT_EQ(grid.cartesian_size(), 1u);
    const auto points = grid.enumerate();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_DOUBLE_EQ(points[0].freq_hz, 400e6);
    EXPECT_EQ(points[0].max_tsvs, 25);
    EXPECT_EQ(points[0].link_width_bits, 32);
    EXPECT_EQ(points[0].phase, SynthesisPhase::Auto);
    EXPECT_EQ(points[0].theta, kSweepTheta);
}

TEST(ParamGrid, CartesianSizeIsAxisProduct) {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({300e6, 400e6, 500e6}));
    grid.set_axis(ParamAxis::max_tsvs({10, 25}));
    grid.set_axis(ParamAxis::link_widths_bits({32, 64}));
    grid.set_axis(ParamAxis::phases(
        {SynthesisPhase::Phase1, SynthesisPhase::Phase2}));
    grid.set_axis(ParamAxis::thetas({1.0, 4.0, 7.0}));
    EXPECT_EQ(grid.cartesian_size(), 3u * 2u * 2u * 2u * 3u);
    EXPECT_EQ(grid.enumerate().size(), grid.cartesian_size());
}

TEST(ParamGrid, EnumerationOrderIsNestedAndIndexed) {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({300e6, 400e6}));
    grid.set_axis(ParamAxis::max_tsvs({10, 25}));
    const auto points = grid.enumerate();
    ASSERT_EQ(points.size(), 4u);
    // Frequency is the outer loop, TSV budget inner.
    EXPECT_DOUBLE_EQ(points[0].freq_hz, 300e6);
    EXPECT_EQ(points[0].max_tsvs, 10);
    EXPECT_DOUBLE_EQ(points[1].freq_hz, 300e6);
    EXPECT_EQ(points[1].max_tsvs, 25);
    EXPECT_DOUBLE_EQ(points[2].freq_hz, 400e6);
    EXPECT_EQ(points[2].max_tsvs, 10);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, static_cast<int>(i));
}

TEST(ParamGrid, FilterPrunesAndReindexes) {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({300e6, 400e6, 500e6}));
    grid.set_axis(ParamAxis::link_widths_bits({32, 64}));
    grid.set_filter([](const GridPoint& p) {
        // e.g. wide links only make sense at low frequency
        return !(p.link_width_bits == 64 && p.freq_hz > 350e6);
    });
    const auto points = grid.enumerate();
    EXPECT_EQ(grid.cartesian_size(), 6u);
    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, static_cast<int>(i));
        EXPECT_FALSE(points[i].link_width_bits == 64 &&
                     points[i].freq_hz > 350e6);
    }
    grid.set_filter(nullptr);
    EXPECT_EQ(grid.enumerate().size(), 6u);
}

TEST(ParamGrid, RejectsInvalidAxes) {
    ParamGrid grid;
    EXPECT_THROW(grid.set_axis(ParamAxis::frequencies_hz({})),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis::frequencies_hz({-1.0})),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis::max_tsvs({0})),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis::link_widths_bits({0})),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis{ParamKind::Phase, {3.0}}),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis::thetas({-2.0})),
                 std::invalid_argument);
    EXPECT_THROW(grid.set_axis(ParamAxis::thetas({0.0})),
                 std::invalid_argument);
}

TEST(GridPoint, ApplyMapsParametersIntoConfig) {
    GridPoint p;
    p.freq_hz = 500e6;
    p.max_tsvs = 12;
    p.link_width_bits = 64;
    p.theta = 4.0;

    SynthesisConfig base;
    const SynthesisConfig cfg = p.apply(base);
    EXPECT_DOUBLE_EQ(cfg.eval.freq_hz, 500e6);
    EXPECT_EQ(cfg.max_ill, 12);
    EXPECT_EQ(cfg.eval.lib.params().flit_width_bits, 64);
    // The whole datapath scales with the flit width: wire energy, switch
    // per-flit energy, crossbar area, NI energy.
    EXPECT_DOUBLE_EQ(cfg.eval.wire.params().energy_pj_per_flit_mm,
                     base.eval.wire.params().energy_pj_per_flit_mm * 2.0);
    EXPECT_DOUBLE_EQ(cfg.eval.lib.params().switch_e0_pj,
                     base.eval.lib.params().switch_e0_pj * 2.0);
    EXPECT_DOUBLE_EQ(cfg.eval.lib.params().switch_area_a2_mm2,
                     base.eval.lib.params().switch_area_a2_mm2 * 2.0);
    EXPECT_DOUBLE_EQ(cfg.eval.lib.params().ni_energy_pj,
                     base.eval.lib.params().ni_energy_pj * 2.0);
    // Fixed theta pins the sweep to one iteration but keeps the base
    // theta_max as Eq. 1's normalization bound.
    EXPECT_DOUBLE_EQ(cfg.theta_min, 4.0);
    EXPECT_DOUBLE_EQ(cfg.theta_max, base.theta_max);
    EXPECT_GT(cfg.theta_min + cfg.theta_step, cfg.theta_max);

    // A fixed theta above the base bound raises the bound to itself.
    p.theta = base.theta_max + 5.0;
    const SynthesisConfig hi = p.apply(base);
    EXPECT_DOUBLE_EQ(hi.theta_min, hi.theta_max);
}

TEST(GridPoint, ApplyWithSweepThetaKeepsConfigSweep) {
    GridPoint p;  // theta = kSweepTheta
    SynthesisConfig base;
    base.theta_min = 2.0;
    base.theta_max = 11.0;
    const SynthesisConfig cfg = p.apply(base);
    EXPECT_DOUBLE_EQ(cfg.theta_min, 2.0);
    EXPECT_DOUBLE_EQ(cfg.theta_max, 11.0);
}

TEST(GridPoint, KeyIsExactIdentity) {
    GridPoint a;
    GridPoint b;
    EXPECT_EQ(a.key(), b.key());
    b.freq_hz = a.freq_hz + 1e-6;  // tiny but real difference
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.phase = SynthesisPhase::Phase2;
    EXPECT_NE(a.key(), b.key());
    // index is bookkeeping, not identity
    b = a;
    b.index = 7;
    EXPECT_EQ(a.key(), b.key());
}

TEST(GridPoint, LabelMentionsParameters) {
    GridPoint p;
    p.freq_hz = 400e6;
    p.theta = 4.0;
    const std::string label = p.label();
    EXPECT_NE(label.find("400MHz"), std::string::npos);
    EXPECT_NE(label.find("tsv=25"), std::string::npos);
    EXPECT_NE(label.find("theta=4"), std::string::npos);
}

TEST(ParamGrid, RoutingAxisEnumeratesPolicies) {
    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({300e6, 400e6}));
    grid.set_axis(ParamAxis::routing_policies(
        {routing::RoutingPolicyId::UpDown,
         routing::RoutingPolicyId::WestFirst,
         routing::RoutingPolicyId::OddEven}));
    EXPECT_EQ(grid.cartesian_size(), 6u);
    const auto points = grid.enumerate();
    ASSERT_EQ(points.size(), 6u);
    // Routing is the innermost axis.
    EXPECT_EQ(points[0].routing, routing::RoutingPolicyId::UpDown);
    EXPECT_EQ(points[1].routing, routing::RoutingPolicyId::WestFirst);
    EXPECT_EQ(points[2].routing, routing::RoutingPolicyId::OddEven);
    EXPECT_DOUBLE_EQ(points[2].freq_hz, 300e6);
    EXPECT_DOUBLE_EQ(points[3].freq_hz, 400e6);
}

TEST(ParamGrid, RoutingAxisRejectsBadValue) {
    ParamGrid grid;
    ParamAxis bad{ParamKind::Routing, {7.0}};
    EXPECT_THROW(grid.set_axis(bad), std::invalid_argument);
}

TEST(GridPoint, RoutingInKeyConfigAndLabel) {
    GridPoint a;
    GridPoint b;
    b.routing = routing::RoutingPolicyId::WestFirst;
    // Non-default policies extend the identity; default points keep the
    // pre-policy key (and therefore their derived seeds).
    EXPECT_NE(a.key(), b.key());
    EXPECT_EQ(a.key().find("rp="), std::string::npos);
    EXPECT_NE(b.key().find("rp=west-first"), std::string::npos);
    // The partition stage never consumes the policy: synthesis seeds and
    // partition artifacts stay shared across the routing axis.
    EXPECT_EQ(a.partition_key(), b.partition_key());
    EXPECT_EQ(a.apply(SynthesisConfig{}).routing,
              routing::RoutingPolicyId::UpDown);
    EXPECT_EQ(b.apply(SynthesisConfig{}).routing,
              routing::RoutingPolicyId::WestFirst);
    EXPECT_EQ(a.label().find("routing="), std::string::npos);
    EXPECT_NE(b.label().find("routing=west-first"), std::string::npos);
}

}  // namespace
}  // namespace sunfloor
