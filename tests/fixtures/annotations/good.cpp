// Fixture: correct lock discipline through the util::Mutex shim. Must
// compile cleanly under `clang -fsyntax-only -Werror=thread-safety`
// (annotations_compile_test asserts it does).
#include "sunfloor/util/mutex.h"

namespace {

class Counter {
public:
    void add(int delta) SF_EXCLUDES(mu_) {
        sunfloor::util::MutexLock lock(mu_);
        n_ += delta;
    }

    int wait_nonzero() SF_EXCLUDES(mu_) {
        sunfloor::util::UniqueLock lock(mu_);
        while (n_ == 0) cv_.wait(lock);
        return n_;
    }

    void bump_locked() SF_REQUIRES(mu_) { ++n_; }

    void bump() SF_EXCLUDES(mu_) {
        sunfloor::util::MutexLock lock(mu_);
        bump_locked();
        cv_.notify_all();
    }

private:
    mutable sunfloor::util::Mutex mu_;
    sunfloor::util::CondVar cv_;
    int n_ SF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter c;
    c.add(1);
    c.bump();
    return c.wait_nonzero();
}
