// Fixture: known-bad lock discipline. annotations_compile_test asserts
// this file FAILS to compile under `clang -fsyntax-only
// -Werror=thread-safety` — the negative test that proves the capability
// analysis is actually wired up and not silently disabled.
#include "sunfloor/util/mutex.h"

namespace {

class Counter {
public:
    // Reads a guarded member with no lock held.
    int racy_read() { return n_; }

    // Calls a REQUIRES method without holding the capability.
    void racy_bump() { bump_locked(); }

    void bump_locked() SF_REQUIRES(mu_) { ++n_; }

private:
    mutable sunfloor::util::Mutex mu_;
    int n_ SF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter c;
    c.racy_bump();
    return c.racy_read();
}
