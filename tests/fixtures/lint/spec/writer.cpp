// Fixture: float-format in a pinned path (spec/). The two pinned specs
// pass; everything else fires (lint_test pins the exact lines).
#include <cstdio>

void write_spec(double v) {
    std::printf("theta %.6g\n", v);          // pinned: ok
    std::printf("metric %.17g\n", v);        // pinned: ok
    std::printf("pct 100%% at %.6g\n", v);   // %% is a literal: ok
    std::printf("bad %f\n", v);              // line 9: float-format
    std::printf("bad %.3f\n", v);            // line 10: float-format
    std::printf("bad %g\n", v);              // line 11: float-format
    std::printf("bad %12.4e\n", v);          // line 12: float-format
    std::printf("int %d is fine\n", 3);      // non-float conversion: ok
}
