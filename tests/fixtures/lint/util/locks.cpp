// Fixture: util/ is where the annotated shim wraps the standard
// primitives, so raw std::mutex here is exempt — zero findings.
#include <mutex>

std::mutex g_mu;
void touch() { std::lock_guard<std::mutex> lock(g_mu); }
