// Fixture: wall-clock in an obs/ path is exempt from nondet-time —
// this file must produce zero findings.
#include <chrono>
#include <ctime>

long stamp() { return time(nullptr); }
auto wall() { return std::chrono::system_clock::now(); }
