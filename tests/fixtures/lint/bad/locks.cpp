// Fixture: raw standard-library locking outside util/ (lint_test pins
// the lines).
#include <condition_variable>
#include <mutex>

std::mutex g_mu;                    // line 6: raw-mutex
std::condition_variable g_cv;       // line 7: raw-mutex

void touch() {
    std::lock_guard<std::mutex> lock(g_mu);  // line 10: raw-mutex (x2)
}
