// Fixture: suppression behavior (lint_test pins the lines).
#include <cmath>
#include <cstdlib>

// Reasoned same-line suppression: silenced.
double a(double x) { return std::pow(x, 0.5); }  // lint:allow(nondet-pow) fixture: reasoned suppression

// Reasoned above-line suppression: silenced.
// lint:allow(nondet-pow) fixture: reasoned suppression, line above
double b(double x) { return std::pow(x, 2.0); }

// Reasonless suppression: does NOT silence the finding, and itself
// raises suppression-syntax.
// lint:allow(nondet-rand)
int c() { return rand() % 7; }  // line 15: nondet-rand (line 14: suppression-syntax)

// Wrong rule named: the pow finding survives.
double d(double x) { return std::pow(x, 3.0); }  // lint:allow(nondet-rand) wrong rule on purpose — line 18: nondet-pow
