// Fixture: enum definitions for the enum-name-coverage rule. The
// tables live in enums_table.cpp — the rule is cross-file.
#pragma once

enum class Color { kRed, kGreen, kBlue };
enum class Shape { kCircle = 1, kSquare = 2 };
