// Fixture: one complete EnumName table (ok, aliases allowed) and one
// missing an enumerator (fires; lint_test pins the line).
#include "enums.h"

template <typename E>
struct EnumName {
    E value;
    const char* name;
};

constexpr EnumName<Shape> kShapeNames[] = {
    {Shape::kCircle, "circle"},
    {Shape::kSquare, "square"},
    {Shape::kSquare, "box"},  // alias entry: fine
};

constexpr EnumName<Color> kColorNames[] = {  // line 17: enum-name-coverage
    {Color::kRed, "red"},
    {Color::kGreen, "green"},
    // kBlue is missing.
};
