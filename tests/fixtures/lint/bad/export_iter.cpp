// Fixture: unordered iteration in a file that writes exports. The
// write_report declaration marks the file as a writer; both range-fors
// over unordered containers fire (lint_test pins the lines).
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

void write_report(const std::unordered_map<std::string, int>& counts,
                  const std::unordered_set<std::string>& tags) {
    for (const auto& [k, v] : counts)        // line 12: unordered-iter-export
        std::printf("%s=%d\n", k.c_str(), v);
    for (const auto& t : tags)               // line 14: unordered-iter-export
        std::printf("%s\n", t.c_str());
    const std::map<std::string, int> sorted(counts.begin(), counts.end());
    for (const auto& [k, v] : sorted)        // ordered copy: ok
        std::printf("%s=%d\n", k.c_str(), v);
}
