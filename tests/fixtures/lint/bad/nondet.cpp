// Fixture: every nondeterminism rule fires here (lint_test pins the
// exact lines; renumber the expectations if you edit this file).
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <random>

double a(double x) { return std::pow(x, 0.5); }          // line 9: nondet-pow
float b(float x) { return powf(x, 2.0f); }               // line 10: nondet-pow
int c() { return rand() % 7; }                           // line 11: nondet-rand
void d(unsigned s) { srand(s); }                         // line 12: nondet-rand
unsigned e() { return std::random_device{}(); }          // line 13: nondet-rand
long f() { return time(nullptr); }                       // line 14: nondet-time
auto g() { return std::chrono::system_clock::now(); }    // line 15: nondet-time
