// Fixture: unordered iteration in a file with no writer-shaped function
// is fine (order-insensitive aggregation) — zero findings expected.
#include <string>
#include <unordered_map>

int total(const std::unordered_map<std::string, int>& counts) {
    int sum = 0;
    for (const auto& [k, v] : counts) sum += v;
    return sum;
}
