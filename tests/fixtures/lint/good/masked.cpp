// Fixture: banned tokens inside comments and string literals must NOT
// fire — the scanner masks both before matching. This whole file is
// expected to produce zero findings.
//
// std::pow(x, y) in a line comment.
/* rand() and srand(seed) in a block comment. */
#include <string>

std::string doc() {
    return "call std::pow(x, y) or time(nullptr) or std::mutex here";
}

std::string raw() {
    return R"(random_device and system_clock and %f inside a raw string)";
}

// A non-call use of the name: a member access `obj.time` or a variable
// named pow is fine too.
struct S {
    int time = 0;
    int pow = 0;
};
int h(const S& s) { return s.time + s.pow; }
