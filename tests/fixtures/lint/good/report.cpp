// Fixture: a loose %f outside the pinned-format paths is fine — this
// file must produce zero findings (its path has no spec/specgen/cas
// component).
#include <cstdio>

void print_summary(double v) { std::printf("latency %.3f ms\n", v); }
