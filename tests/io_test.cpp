// Tests for DOT / SVG / report exports.
#include <gtest/gtest.h>

#include <sstream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/io/dot.h"
#include "sunfloor/io/floorplan_dump.h"
#include "sunfloor/io/report.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisResult small_result() {
    DesignSpec spec = make_d38_tvopd();
    SynthesisConfig cfg;
    cfg.partition.num_starts = 2;
    cfg.run_floorplan = false;
    cfg.max_switches = 5;
    return Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
}

TEST(IoDot, TopologyDotWellFormed) {
    DesignSpec spec = make_d38_tvopd();
    const auto res = small_result();
    const int bp = res.best_power_index();
    ASSERT_GE(bp, 0);
    std::ostringstream os;
    write_topology_dot(os, res.points[bp].topo, spec);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("digraph noc {"), std::string::npos);
    EXPECT_NE(dot.find("cluster_layer0"), std::string::npos);
    EXPECT_NE(dot.find("cluster_layer2"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
    // Balanced braces.
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
}

TEST(IoDot, OptionsRespected) {
    DesignSpec spec = make_d38_tvopd();
    const auto res = small_result();
    const auto& topo = res.points[res.best_power_index()].topo;
    DotOptions opts;
    opts.cluster_by_layer = false;
    opts.show_bandwidth = false;
    std::ostringstream os;
    write_topology_dot(os, topo, spec, opts);
    EXPECT_EQ(os.str().find("cluster_layer"), std::string::npos);
    EXPECT_EQ(os.str().find("label=\"4"), std::string::npos);
}

TEST(IoSvg, LayerSvgWellFormed) {
    DesignSpec spec = make_d38_tvopd();
    const auto res = small_result();
    const auto& topo = res.points[res.best_power_index()].topo;
    std::ostringstream os;
    write_layer_svg(os, topo, spec, 0);
    const std::string svg = os.str();
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(IoText, FloorplanTextListsEverything) {
    DesignSpec spec = make_d38_tvopd();
    const auto res = small_result();
    const auto& topo = res.points[res.best_power_index()].topo;
    std::ostringstream os;
    write_floorplan_text(os, topo, spec);
    const std::string text = os.str();
    EXPECT_NE(text.find("layer 0"), std::string::npos);
    EXPECT_NE(text.find("layer 2"), std::string::npos);
    EXPECT_NE(text.find("vld0"), std::string::npos);
    EXPECT_NE(text.find("switch"), std::string::npos);
}

TEST(IoReport, DesignPointsTable) {
    const auto res = small_result();
    const Table t = design_points_table(res.points);
    EXPECT_EQ(t.num_rows(), res.points.size());
    EXPECT_EQ(t.columns().front(), "phase");
}

TEST(IoReport, SynthesisReportMentionsBestPoints) {
    const auto res = small_result();
    std::ostringstream os;
    write_synthesis_report(os, res);
    EXPECT_NE(os.str().find("best power point"), std::string::npos);
    EXPECT_NE(os.str().find("pareto front"), std::string::npos);
}

TEST(IoReport, WirelengthHistogram) {
    const Table t = wirelength_histogram({0.1, 0.4, 1.2, 5.0, 99.0}, 0.5, 4);
    EXPECT_EQ(t.num_rows(), 4u);
    // First bin [0, 0.5) holds two samples; overflow clamps to last bin.
    EXPECT_EQ(std::get<long long>(t.row(0)[2]), 2);
    EXPECT_EQ(std::get<long long>(t.row(3)[2]), 2);
}

}  // namespace
}  // namespace sunfloor
