// Property test (the contract between the two evaluation backends): on
// every paper benchmark, the flit-level simulator at vanishing load
// reproduces the analytic zero-load latency of noc/evaluation.cpp for
// every routed flow, to 1e-6 cycles. Both backends price a path from
// the same Topology and WireModel, so any drift here means one of them
// changed its latency convention.
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/noc/evaluation.h"
#include "sunfloor/sim/simulator.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;  // latency needs only LP switch positions
    cfg.max_switches = 6;       // bound the per-benchmark sweep
    return cfg;
}

TEST(SimZeroLoad, AgreesWithAnalyticLatencyOnEveryPaperBenchmark) {
    for (const std::string& name : benchmark_names()) {
        SCOPED_TRACE(name);
        const DesignSpec spec = make_benchmark(name);
        const SynthesisConfig cfg = fast_cfg();
        const SynthesisResult res = run_synthesis(spec, cfg);

        sim::SimParams params;
        params.inject.packet_length_flits = 1;  // head == tail == packet

        int checked_designs = 0;
        for (const DesignPoint& dp : res.points) {
            if (!dp.topo.all_flows_routed()) continue;
            if (checked_designs >= 3) break;  // bound the runtime
            ++checked_designs;
            const sim::SimReport rep =
                sim::simulate_zero_load(dp.topo, spec, cfg.eval, params);
            EXPECT_TRUE(rep.drained);
            ASSERT_EQ(rep.flow_avg_latency_cycles.size(),
                      static_cast<std::size_t>(dp.topo.num_flows()));
            for (int f = 0; f < dp.topo.num_flows(); ++f) {
                const double analytic = flow_latency(dp.topo, f, cfg.eval);
                EXPECT_NEAR(rep.flow_avg_latency_cycles[
                                static_cast<std::size_t>(f)],
                            analytic, 1e-6)
                    << "flow " << f << " of " << name << " ("
                    << dp.switch_count << " switches)";
            }
        }
        EXPECT_GT(checked_designs, 0)
            << name << ": no routed design to check";
    }
}

TEST(SimZeroLoad, MultiFlitPacketsAddExactlyThePipelineTail) {
    // With deep buffers and a serialization-free probe, a P-flit packet
    // lands its tail exactly P-1 cycles after its head on every flow.
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const SynthesisResult res = run_synthesis(spec, cfg);
    const int best = res.best_power_index();
    ASSERT_GE(best, 0);
    const DesignPoint& dp = res.points[static_cast<std::size_t>(best)];

    sim::SimParams one;
    one.inject.packet_length_flits = 1;
    sim::SimParams four = one;
    four.inject.packet_length_flits = 4;
    four.buffer_depth_flits = 16;
    const sim::SimReport r1 =
        sim::simulate_zero_load(dp.topo, spec, cfg.eval, one);
    const sim::SimReport r4 =
        sim::simulate_zero_load(dp.topo, spec, cfg.eval, four);
    for (int f = 0; f < dp.topo.num_flows(); ++f) {
        const auto uf = static_cast<std::size_t>(f);
        ASSERT_GE(r1.flow_avg_latency_cycles[uf], 0.0);
        EXPECT_NEAR(r4.flow_avg_latency_cycles[uf],
                    r1.flow_avg_latency_cycles[uf] + 3.0, 1e-6);
    }
}

}  // namespace
}  // namespace sunfloor
