// Tests for the NoC component, wire and TSV models: monotonicity and the
// calibration points the synthesis flow depends on.
#include <gtest/gtest.h>

#include "sunfloor/model/noc_library.h"
#include "sunfloor/model/tsv.h"
#include "sunfloor/model/wire.h"

namespace sunfloor {
namespace {

TEST(NocLibrary, FlitsPerSecond) {
    NocLibrary lib;
    // 32-bit flits = 4 bytes: 400 MB/s -> 1e8 flits/s.
    EXPECT_NEAR(lib.flits_per_second(400.0), 1e8, 1.0);
}

TEST(NocLibrary, MaxFrequencyDecreasesWithPorts) {
    NocLibrary lib;
    double prev = 1e18;
    for (int p = 2; p <= 30; ++p) {
        const double f = lib.max_frequency_hz(p, p);
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(NocLibrary, MaxSwitchSizeCalibration) {
    // The D_26_media case study of Section VIII-A needs >= 3 switches at
    // 400 MHz (a 26-port switch cannot run that fast, ~12 ports can).
    NocLibrary lib;
    const int sz = lib.max_switch_size(400e6);
    EXPECT_GE(sz, 10);
    EXPECT_LE(sz, 14);
    EXPECT_LT(lib.max_frequency_hz(26, 26), 400e6);
    EXPECT_GE(lib.max_frequency_hz(sz, sz), 400e6);
}

TEST(NocLibrary, MaxSwitchSizeInverseOfMaxFrequency) {
    NocLibrary lib;
    for (double f : {200e6, 400e6, 600e6, 800e6}) {
        const int sz = lib.max_switch_size(f);
        EXPECT_GE(lib.max_frequency_hz(sz, sz), f);
        EXPECT_LT(lib.max_frequency_hz(sz + 1, sz + 1), f);
    }
}

TEST(NocLibrary, SwitchEnergyGrowsWithPorts) {
    NocLibrary lib;
    EXPECT_LT(lib.switch_energy_per_flit_pj(2, 2),
              lib.switch_energy_per_flit_pj(8, 8));
}

TEST(NocLibrary, SwitchPowerFewMwAtGigahertz) {
    // "a single switch ... has low power consumption (few mW at 1 GHz)".
    NocLibrary lib;
    const double mw = lib.switch_power_mw(5, 5, 1e9, 800.0);
    EXPECT_GT(mw, 0.2);
    EXPECT_LT(mw, 10.0);
}

TEST(NocLibrary, SwitchPowerMonotoneInTraffic) {
    NocLibrary lib;
    EXPECT_LT(lib.switch_power_mw(5, 5, 400e6, 100.0),
              lib.switch_power_mw(5, 5, 400e6, 1000.0));
}

TEST(NocLibrary, AreaQuadraticTermPresent) {
    NocLibrary lib;
    const double a4 = lib.switch_area_mm2(4, 4);
    const double a8 = lib.switch_area_mm2(8, 8);
    EXPECT_GT(a8, 2.0 * a4 - lib.params().switch_area_a0_mm2 - 1e-12);
}

TEST(NocLibrary, NiPower) {
    NocLibrary lib;
    EXPECT_GT(lib.ni_power_mw(400e6, 400.0), lib.ni_idle_power_mw(400e6));
    EXPECT_GT(lib.ni_area_mm2(), 0.0);
}

TEST(WireModel, DelayLinearInLength) {
    WireModel w;
    EXPECT_DOUBLE_EQ(w.delay_ns(2.0), 2.0 * w.params().delay_ns_per_mm);
    EXPECT_DOUBLE_EQ(w.delay_ns(-1.0), 0.0);
}

TEST(WireModel, PipelineStagesAtLeastOne) {
    WireModel w;
    EXPECT_EQ(w.pipeline_stages(0.0, 400e6), 1);
    EXPECT_EQ(w.pipeline_stages(0.5, 400e6), 1);
    // A very long link needs several stages at high frequency.
    EXPECT_GT(w.pipeline_stages(10.0, 1e9), 3);
}

TEST(WireModel, PowerComponents) {
    WireModel w;
    // Dynamic part scales with flits, idle part with length and frequency.
    const double idle_only = w.power_mw(2.0, 0.0, 400e6);
    EXPECT_NEAR(idle_only, w.params().idle_mw_per_mm_ghz * 2.0 * 0.4, 1e-12);
    const double with_traffic = w.power_mw(2.0, 1e8, 400e6);
    EXPECT_GT(with_traffic, idle_only);
}

TEST(TsvModel, TsvsPerLinkAndMacroArea) {
    TsvModel tsv;
    const int n = tsv.tsvs_per_link(32);
    EXPECT_EQ(n, 32 + tsv.params().overhead_wires_per_link);
    // 40 wires at 8 um pitch: 40 * 0.0064 mm2 = 0.256 mm2... per wire the
    // macro reserves pitch^2.
    EXPECT_NEAR(tsv.macro_area_mm2(32), n * 0.008 * 0.008, 1e-12);
}

TEST(TsvModel, RedundancyIncreasesArea) {
    TsvParams p;
    p.redundant_tsvs_per_link = 4;
    TsvModel tsv(p);
    TsvModel base;
    EXPECT_GT(tsv.macro_area_mm2(32), base.macro_area_mm2(32));
}

TEST(TsvModel, VerticalHopsAreCheap) {
    // Loi et al. [34]: vertical links are an order of magnitude more
    // efficient than moderate planar links. One layer hop must cost less
    // than 0.5 mm of planar wire at the same traffic.
    TsvModel tsv;
    WireModel wire;
    const double flits = 1e8;
    EXPECT_LT(tsv.power_mw(flits, 1),
              wire.power_mw(0.5, flits, 400e6));
    EXPECT_LT(tsv.delay_ns(1), wire.delay_ns(0.5));
}

TEST(TsvModel, DelayMatchesPaperFigure) {
    // ~17 ps per TSV crossing.
    TsvModel tsv;
    EXPECT_NEAR(tsv.delay_ns(1), 0.017, 0.005);
    EXPECT_NEAR(tsv.delay_ns(3), 3 * tsv.delay_ns(1), 1e-12);
}

TEST(TsvModel, MaxIllFromBudget) {
    TsvModel tsv;
    const int per_link = tsv.tsvs_per_link(32);
    EXPECT_EQ(tsv.max_ill_for_tsv_budget(25 * per_link, 32), 25);
    EXPECT_EQ(tsv.max_ill_for_tsv_budget(per_link - 1, 32), 0);
}

TEST(TsvModel, YieldCurveShape) {
    // Fig. 1 [39]: flat up to a knee, then rapidly decreasing.
    const double y0 = TsvModel::yield(0);
    const double y_knee = TsvModel::yield(2000);
    const double y_past = TsvModel::yield(4000);
    const double y_far = TsvModel::yield(8000);
    EXPECT_NEAR(y0, y_knee, 1e-9);
    EXPECT_LT(y_past, y_knee);
    EXPECT_LT(y_far, y_past);
    EXPECT_GE(y_far, 0.0);
}

}  // namespace
}  // namespace sunfloor
