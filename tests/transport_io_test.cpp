// Byte-level robustness of the service transport's line framing:
// one-byte-at-a-time delivery, read-ahead across calls, EINTR on both the
// read and write sides, partial send()s under a tiny socket buffer,
// mid-frame EOF, frame-size bounds and receive-timeout pacing. Regression
// suite: a frame must never be dropped, duplicated or torn no matter how
// the kernel fragments the stream.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sunfloor/service/transport.h"

namespace sunfloor::service {
namespace {

/// A connected AF_UNIX stream pair; [0] is the read end in these tests.
struct SocketPair {
    int fd[2] = {-1, -1};
    SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
    ~SocketPair() {
        close_fd(fd[0]);
        close_fd(fd[1]);
    }
};

/// Install a no-op SIGUSR1 handler *without* SA_RESTART, so a signal
/// delivered to a thread blocked in read(2)/send(2) surfaces as EINTR —
/// exactly the condition the transport must absorb.
void install_eintr_signal() {
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);
}

void write_byte(int fd, char c) {
    ASSERT_EQ(::write(fd, &c, 1), 1);
}

TEST(TransportIo, OneByteAtATimeDeliveryAssemblesEveryFrameExactly) {
    SocketPair sp;
    const std::vector<std::string> frames = {
        "alpha",
        "",  // empty frame: just the terminator
        "{\"op\":\"ping\"}",
        std::string(3000, 'x'),
        "last",
    };

    std::thread writer([&] {
        for (const std::string& f : frames) {
            for (const char c : f) write_byte(sp.fd[1], c);
            write_byte(sp.fd[1], '\n');
        }
        ::shutdown(sp.fd[1], SHUT_WR);
    });

    std::string buf, line, err;
    for (const std::string& f : frames) {
        ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1) << err;
        EXPECT_EQ(line, f);
    }
    // Clean EOF after the last frame — nothing dropped, nothing invented.
    EXPECT_EQ(read_line(sp.fd[0], buf, line, 0, err), 0);
    writer.join();
}

TEST(TransportIo, ReadAheadCarriesBetweenCallsWithoutLoss) {
    SocketPair sp;
    // One kernel read may slurp several frames; the carry buffer must
    // yield them one by one, byte-exactly, across calls.
    const std::string burst = "a\nbb\nccc\n";
    ASSERT_EQ(::write(sp.fd[1], burst.data(), burst.size()),
              static_cast<ssize_t>(burst.size()));
    std::string buf, line, err;
    ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1);
    EXPECT_EQ(line, "a");
    ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1);
    EXPECT_EQ(line, "bb");
    ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1);
    EXPECT_EQ(line, "ccc");
    ::shutdown(sp.fd[1], SHUT_WR);
    EXPECT_EQ(read_line(sp.fd[0], buf, line, 0, err), 0);
}

TEST(TransportIo, ReaderSurvivesEintrMidFrame) {
    install_eintr_signal();
    SocketPair sp;
    const std::string frame = "interrupted-but-intact";

    std::string buf, line, err;
    int rc = -99;
    std::thread reader(
        [&] { rc = read_line(sp.fd[0], buf, line, 0, err); });

    // Pepper the blocked reader with signals between single-byte writes:
    // every blocking read in between is a fresh EINTR opportunity, and
    // the frame must still come out whole.
    for (const char c : frame) {
        ::usleep(1000);
        ::pthread_kill(reader.native_handle(), SIGUSR1);
        ::usleep(1000);
        write_byte(sp.fd[1], c);
    }
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    write_byte(sp.fd[1], '\n');
    reader.join();
    ASSERT_EQ(rc, 1) << err;
    EXPECT_EQ(line, frame);
}

TEST(TransportIo, WriterSurvivesPartialSendsAndEintr) {
    install_eintr_signal();
    SocketPair sp;
    // A tiny send buffer forces send(2) to accept the payload in many
    // partial chunks while the reader drains on the other side.
    const int sndbuf = 4096;
    ASSERT_EQ(::setsockopt(sp.fd[1], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                           sizeof(sndbuf)),
              0);

    std::string payload;
    payload.reserve(1 << 20);
    for (int i = 0; payload.size() < (1 << 20); ++i)
        payload += "chunk-" + std::to_string(i) + ";";
    const std::string frame = payload + "\n";

    std::atomic<bool> done{false};
    bool ok = false;
    std::thread writer([&] {
        ok = write_all(sp.fd[1], frame);
        done = true;
    });
    // Interrupt the writer while it is (mostly) blocked in send(2).
    std::thread pest([&] {
        while (!done) {
            ::pthread_kill(writer.native_handle(), SIGUSR1);
            ::usleep(500);
        }
    });

    std::string buf, line, err;
    ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1) << err;
    writer.join();
    pest.join();
    EXPECT_TRUE(ok);
    // Byte count and content both exact: no duplicated or dropped chunk.
    ASSERT_EQ(line.size(), payload.size());
    EXPECT_EQ(line, payload);
}

TEST(TransportIo, EofMidFrameIsAnErrorNotATruncatedLine) {
    SocketPair sp;
    const std::string partial = "no-terminator";
    ASSERT_EQ(::write(sp.fd[1], partial.data(), partial.size()),
              static_cast<ssize_t>(partial.size()));
    ::shutdown(sp.fd[1], SHUT_WR);
    std::string buf, line, err;
    EXPECT_EQ(read_line(sp.fd[0], buf, line, 0, err), -1);
    EXPECT_NE(err.find("closed mid-frame"), std::string::npos) << err;
}

TEST(TransportIo, FrameSizeBoundAppliesToLinesAndReadAhead) {
    {
        SocketPair sp;
        const std::string big(64, 'a');
        ASSERT_EQ(::write(sp.fd[1], (big + "\n").data(), big.size() + 1),
                  static_cast<ssize_t>(big.size() + 1));
        std::string buf, line, err;
        EXPECT_EQ(read_line(sp.fd[0], buf, line, 16, err), -1);
        EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
    }
    {
        // A terminator-free stream must trip the same bound instead of
        // growing the carry buffer forever.
        SocketPair sp;
        const std::string endless(64, 'b');
        ASSERT_EQ(::write(sp.fd[1], endless.data(), endless.size()),
                  static_cast<ssize_t>(endless.size()));
        std::string buf, line, err;
        EXPECT_EQ(read_line(sp.fd[0], buf, line, 16, err), -1);
        EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
    }
}

TEST(TransportIo, ReceiveTimeoutPacesWithoutConsumingBytes) {
    SocketPair sp;
    timeval tv{0, 50 * 1000};  // 50 ms
    ASSERT_EQ(::setsockopt(sp.fd[0], SOL_SOCKET, SO_RCVTIMEO, &tv,
                           sizeof(tv)),
              0);
    std::string buf, line, err;
    // Nothing arrives: the timeout surfaces as -2 (keep waiting), and any
    // half-frame read before the timeout stays in the carry buffer.
    const std::string half = "half";
    ASSERT_EQ(::write(sp.fd[1], half.data(), half.size()),
              static_cast<ssize_t>(half.size()));
    EXPECT_EQ(read_line(sp.fd[0], buf, line, 0, err), -2);
    EXPECT_EQ(buf, half);
    // The rest arrives: the next call completes the very same frame.
    const std::string rest = "-frame\n";
    ASSERT_EQ(::write(sp.fd[1], rest.data(), rest.size()),
              static_cast<ssize_t>(rest.size()));
    ASSERT_EQ(read_line(sp.fd[0], buf, line, 0, err), 1) << err;
    EXPECT_EQ(line, "half-frame");
}

TEST(TransportIo, WriteToAClosedPeerFailsWithoutKillingTheProcess) {
    SocketPair sp;
    close_fd(sp.fd[0]);
    sp.fd[0] = -1;
    // MSG_NOSIGNAL: EPIPE must come back as `false`, not SIGPIPE.
    EXPECT_FALSE(write_all(sp.fd[1], "doomed\n"));
}

}  // namespace
}  // namespace sunfloor::service
