// Staged synthesis pipeline: RNG state threading, per-stage artifact
// caching and the bit-transparency of a SynthesisSession relative to the
// stateless entry points.
#include <gtest/gtest.h>

#include <cstring>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/pipeline/session.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = false;
    cfg.max_switches = 6;
    return cfg;
}

bool bitwise_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_points(const std::vector<DesignPoint>& a,
                        const std::vector<DesignPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].phase, b[i].phase);
        EXPECT_EQ(a[i].switch_count, b[i].switch_count);
        EXPECT_TRUE(bitwise_equal(a[i].theta, b[i].theta));
        EXPECT_EQ(a[i].valid, b[i].valid);
        EXPECT_EQ(a[i].fail_reason, b[i].fail_reason);
        EXPECT_EQ(a[i].topo.num_links(), b[i].topo.num_links());
        EXPECT_TRUE(bitwise_equal(a[i].report.power.total_mw(),
                                  b[i].report.power.total_mw()));
        EXPECT_TRUE(bitwise_equal(a[i].report.avg_latency_cycles,
                                  b[i].report.avg_latency_cycles));
        EXPECT_TRUE(bitwise_equal(a[i].report.noc_area_mm2(),
                                  b[i].report.noc_area_mm2()));
        ASSERT_EQ(a[i].layer_die_area_mm2.size(),
                  b[i].layer_die_area_mm2.size());
        for (std::size_t l = 0; l < a[i].layer_die_area_mm2.size(); ++l)
            EXPECT_TRUE(bitwise_equal(a[i].layer_die_area_mm2[l],
                                      b[i].layer_die_area_mm2[l]));
    }
}

void expect_same_results(const SynthesisResult& a, const SynthesisResult& b) {
    EXPECT_EQ(a.phase_used, b.phase_used);
    expect_same_points(a.points, b.points);
}

TEST(RngState, SnapshotResumesTheExactStream) {
    Rng a(7);
    for (int i = 0; i < 5; ++i) a.next_u64();
    const RngState st = a.state();
    Rng b(st);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(st.key().size(), 64u);
    EXPECT_NE(st.key(), a.state().key());
}

TEST(Pipeline, ColdSessionMatchesRunPhase1IncludingRngThreading) {
    const DesignSpec spec = make_benchmark("D_36_4");
    SynthesisConfig cfg = fast_cfg();
    cfg.max_ill = 12;  // force part of the theta sweep

    Rng ref_rng(cfg.seed);
    const auto ref = run_phase1(spec, cfg, ref_rng);

    pipeline::SynthesisSession session(spec);
    RngState state = Rng(cfg.seed).state();
    const auto got = session.phase1(cfg, state);

    expect_same_points(ref, got);
    // The session must leave the generator exactly where the stateless
    // flow left it (Auto chains Phase 2 onto this state).
    EXPECT_EQ(state, ref_rng.state());
}

TEST(Pipeline, ColdSessionMatchesRunPhase2IncludingRngThreading) {
    const DesignSpec spec = make_benchmark("D_35_bot");
    const SynthesisConfig cfg = fast_cfg();

    Rng ref_rng(cfg.seed);
    const auto ref = run_phase2(spec, cfg, ref_rng);

    pipeline::SynthesisSession session(spec);
    RngState state = Rng(cfg.seed).state();
    const auto got = session.phase2(cfg, state);

    expect_same_points(ref, got);
    EXPECT_EQ(state, ref_rng.state());
}

TEST(Pipeline, WarmSessionIsBitIdenticalAndServesFromCache) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();

    pipeline::SynthesisSession session(spec);
    const SynthesisResult first = session.run(cfg);
    const std::size_t artifacts = session.artifact_count();
    EXPECT_GT(artifacts, 0u);
    const auto cold_stats = session.stats();
    EXPECT_EQ(cold_stats.partition.hits, 0);
    EXPECT_GT(cold_stats.partition.misses, 0);

    const SynthesisResult second = session.run(cfg);
    expect_same_results(first, second);
    // An identical run creates nothing new and recomputes nothing.
    EXPECT_EQ(session.artifact_count(), artifacts);
    const auto warm_stats = session.stats();
    EXPECT_EQ(warm_stats.partition.misses, cold_stats.partition.misses);
    EXPECT_EQ(warm_stats.routing.misses, cold_stats.routing.misses);
    EXPECT_EQ(warm_stats.placement.misses, cold_stats.placement.misses);
    EXPECT_EQ(warm_stats.evaluation.misses, cold_stats.evaluation.misses);
    EXPECT_GT(warm_stats.partition.hits, 0);

    // ... and both runs equal the stateless entry point.
    expect_same_results(first, run_synthesis(spec, cfg));
}

TEST(Pipeline, SessionSharedAcrossFrequenciesMatchesColdRuns) {
    const DesignSpec spec = make_benchmark("D_36_4");
    pipeline::SynthesisSession session(spec);
    for (double f : {300e6, 400e6, 500e6}) {
        SynthesisConfig cfg = fast_cfg();
        cfg.eval.freq_hz = f;
        const SynthesisResult warm = session.run(cfg);
        expect_same_results(warm, run_synthesis(spec, cfg));
    }
    // Frequency first matters at the routing stage, so the later
    // frequencies reused the earlier partitions.
    EXPECT_GT(session.stats().partition.hits, 0);
}

TEST(Pipeline, DifferentSeedsSharingASessionStayIndependent) {
    // Regression test: with the floorplan off the placement stage is pure
    // and its key excludes the RNG, so a run with seed B can hit placement
    // artifacts computed under seed A. The hit must never leak A's
    // generator stream into B's run.
    const DesignSpec spec = make_d26_media();
    SynthesisConfig a;  // default partitioner: seeds 2 and 3 share many
    a.run_floorplan = false;  // routed topologies on this benchmark
    a.seed = 2;
    SynthesisConfig b = a;
    b.seed = 3;

    pipeline::SynthesisSession session(spec);
    const SynthesisResult ra = session.run(a);  // warms the caches
    const auto warm = session.stats();
    const SynthesisResult rb = session.run(b);
    // The scenario only bites when cross-seed sharing actually happened;
    // hit counts are deterministic for a fixed spec and seed pair.
    EXPECT_GT(session.stats().placement.hits - warm.placement.hits, 0);
    expect_same_results(ra, run_synthesis(spec, a));
    expect_same_results(rb, run_synthesis(spec, b));
}

TEST(Pipeline, FloorplanRunsAreDeterministicAndReusableAcrossSeeds) {
    // The flow's legalizer (the custom inserter) consumes no RNG, so the
    // placement stage is pure and floorplan-enabled runs with *different*
    // seeds still share placement artifacts wherever their routed
    // topologies coincide — while staying bit-identical to the stateless
    // entry point.
    const DesignSpec spec = make_d26_media();
    SynthesisConfig a;
    a.run_floorplan = true;
    a.max_switches = 10;
    a.seed = 2;
    SynthesisConfig b = a;
    b.seed = 3;

    pipeline::SynthesisSession session(spec);
    const SynthesisResult ra = session.run(a, SynthesisPhase::Phase1);
    const auto warm = session.stats();
    const SynthesisResult rb = session.run(b, SynthesisPhase::Phase1);
    EXPECT_GT(session.stats().placement.hits - warm.placement.hits, 0);
    expect_same_results(ra, run_synthesis(spec, a, SynthesisPhase::Phase1));
    expect_same_results(rb, run_synthesis(spec, b, SynthesisPhase::Phase1));
    bool any_area = false;
    for (const auto& p : ra.points)
        any_area = any_area || !p.layer_die_area_mm2.empty();
    EXPECT_TRUE(any_area);
}

TEST(Pipeline, DisabledCachesStillProduceIdenticalResults) {
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();

    pipeline::SessionOptions off;
    off.cache_partitions = false;
    off.cache_designs = false;
    pipeline::SynthesisSession session(spec, off);
    const SynthesisResult a = session.run(cfg);
    const SynthesisResult b = session.run(cfg);
    expect_same_results(a, b);
    expect_same_results(a, run_synthesis(spec, cfg));
    EXPECT_EQ(session.artifact_count(), 0u);
    EXPECT_EQ(session.stats().partition.hits, 0);
    EXPECT_GT(session.stats().partition.misses, 0);
}

TEST(Pipeline, ClearDropsArtifactsAndCounters) {
    const DesignSpec spec = make_benchmark("D_36_4");
    pipeline::SynthesisSession session(spec);
    session.run(fast_cfg());
    EXPECT_GT(session.artifact_count(), 0u);
    session.clear();
    EXPECT_EQ(session.artifact_count(), 0u);
    EXPECT_EQ(session.stats().partition.calls(), 0);
    const SynthesisResult after = session.run(fast_cfg());
    expect_same_results(after, run_synthesis(spec, fast_cfg()));
}

TEST(Pipeline, RunReportsStageTiming) {
    const DesignSpec spec = make_benchmark("D_36_4");
    pipeline::SynthesisSession session(spec);
    const SynthesisResult res = session.run(fast_cfg());
    // Every stage ran at least once on this benchmark, so every stage
    // accumulated some (possibly sub-millisecond) wall clock.
    EXPECT_GT(res.timing.total_ms(), 0.0);
    EXPECT_GE(res.timing.partition_ms, 0.0);
    EXPECT_GE(res.timing.routing_ms, 0.0);
    EXPECT_GE(res.timing.placement_ms, 0.0);
    EXPECT_GE(res.timing.evaluation_ms, 0.0);
}

TEST(Pipeline, StageKeysSeparateConsumedFields) {
    SynthesisConfig a = fast_cfg();
    SynthesisConfig b = a;
    // Routing consumes the frequency; partitioning does not.
    b.eval.freq_hz = a.eval.freq_hz * 2;
    EXPECT_EQ(pipeline::partition_cfg_key(a, a.partition),
              pipeline::partition_cfg_key(b, b.partition));
    EXPECT_NE(pipeline::routing_cfg_key(a), pipeline::routing_cfg_key(b));
    EXPECT_NE(pipeline::eval_cfg_key(a), pipeline::eval_cfg_key(b));
    // Neither stage consumes the seed.
    b = a;
    b.seed = a.seed + 1;
    EXPECT_EQ(pipeline::partition_cfg_key(a, a.partition),
              pipeline::partition_cfg_key(b, b.partition));
    EXPECT_EQ(pipeline::routing_cfg_key(a), pipeline::routing_cfg_key(b));
    // Partitioning consumes alpha; the soft thresholds are routing-only.
    b = a;
    b.alpha = 0.5;
    EXPECT_NE(pipeline::partition_cfg_key(a, a.partition),
              pipeline::partition_cfg_key(b, b.partition));
    b = a;
    b.soft_ill_margin = a.soft_ill_margin + 1;
    EXPECT_NE(pipeline::routing_cfg_key(a), pipeline::routing_cfg_key(b));
    EXPECT_EQ(pipeline::partition_cfg_key(a, a.partition),
              pipeline::partition_cfg_key(b, b.partition));
    // The routing policy is a routing-stage field only: a session caches
    // one routing artifact per discipline, while partition artifacts are
    // shared across the routing axis.
    b = a;
    b.routing = routing::RoutingPolicyId::OddEven;
    EXPECT_NE(pipeline::routing_cfg_key(a), pipeline::routing_cfg_key(b));
    EXPECT_EQ(pipeline::partition_cfg_key(a, a.partition),
              pipeline::partition_cfg_key(b, b.partition));
    EXPECT_EQ(pipeline::eval_cfg_key(a), pipeline::eval_cfg_key(b));
    EXPECT_EQ(pipeline::placement_cfg_key(a), pipeline::placement_cfg_key(b));
    // The placement key only sees the floorplan side of the config.
    b = a;
    b.run_floorplan = !a.run_floorplan;
    EXPECT_NE(pipeline::placement_cfg_key(a), pipeline::placement_cfg_key(b));
}

TEST(Pipeline, TopologyFingerprintTracksContent) {
    const DesignSpec spec = make_benchmark("D_36_4");
    Topology t(spec.cores, spec.comm.num_flows());
    const std::string empty = pipeline::topology_fingerprint(t);
    t.add_switch("sw0", 0, {1.0, 2.0});
    const std::string one = pipeline::topology_fingerprint(t);
    EXPECT_NE(empty, one);
    t.add_link(NodeRef::core(0), NodeRef::sw(0));
    const std::string linked = pipeline::topology_fingerprint(t);
    EXPECT_NE(one, linked);
    Topology u(spec.cores, spec.comm.num_flows());
    u.add_switch("sw0", 0, {1.0, 2.0});
    u.add_link(NodeRef::core(0), NodeRef::sw(0));
    EXPECT_EQ(linked, pipeline::topology_fingerprint(u));
}

}  // namespace
}  // namespace sunfloor
