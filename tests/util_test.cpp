// Unit tests for the util substrate: geometry, RNG, strings, tables.
#include <gtest/gtest.h>

#include <sstream>

#include "sunfloor/util/csv.h"
#include "sunfloor/util/geometry.h"
#include "sunfloor/util/rng.h"
#include "sunfloor/util/strings.h"

namespace sunfloor {
namespace {

TEST(Geometry, ManhattanAndEuclidean) {
    EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
    EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(manhattan({-1, 2}, {-1, 2}), 0.0);
}

TEST(Geometry, RectBasics) {
    const Rect r{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(r.right(), 4.0);
    EXPECT_DOUBLE_EQ(r.top(), 6.0);
    EXPECT_DOUBLE_EQ(r.area(), 12.0);
    EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
}

TEST(Geometry, OverlapDetection) {
    const Rect a{0, 0, 2, 2};
    const Rect b{1, 1, 2, 2};
    const Rect c{2, 0, 2, 2};  // abutting, not overlapping
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
    EXPECT_DOUBLE_EQ(a.overlap_area(c), 0.0);
}

TEST(Geometry, ContainsAndUnion) {
    const Rect a{0, 0, 4, 4};
    EXPECT_TRUE(a.contains(Rect{1, 1, 2, 2}));
    EXPECT_FALSE(a.contains(Rect{3, 3, 2, 2}));
    EXPECT_TRUE(a.contains(Point{4, 4}));
    EXPECT_FALSE(a.contains(Point{4.1, 4}));
    const Rect u = a.united({5, 5, 1, 1});
    EXPECT_DOUBLE_EQ(u.right(), 6.0);
    EXPECT_DOUBLE_EQ(u.top(), 6.0);
}

TEST(Geometry, BoundingBoxAndTotalOverlap) {
    std::vector<Rect> rects{{0, 0, 1, 1}, {2, 2, 1, 1}};
    const Rect bb = bounding_box(rects);
    EXPECT_DOUBLE_EQ(bb.area(), 9.0);
    EXPECT_DOUBLE_EQ(total_overlap(rects), 0.0);
    rects.push_back({0.5, 0.5, 1, 1});
    EXPECT_GT(total_overlap(rects), 0.0);
    EXPECT_TRUE(bounding_box({}).area() == 0.0);
}

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangesRespected) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        const int v = r.next_int(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
        EXPECT_LT(r.next_below(10), 10u);
    }
}

TEST(Rng, NextBelowCoversAllValues) {
    Rng r(11);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 500; ++i)
        ++seen[static_cast<std::size_t>(r.next_below(5))];
    for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, ShufflePreservesElements) {
    Rng r(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWs) {
    const auto parts = split_ws("  core  arm0\t1.2  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "core");
    EXPECT_EQ(parts[1], "arm0");
    EXPECT_EQ(parts[2], "1.2");
    EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Format) {
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, ParseDouble) {
    double d = 0.0;
    EXPECT_TRUE(parse_double("3.5", d));
    EXPECT_DOUBLE_EQ(d, 3.5);
    EXPECT_TRUE(parse_double(" -2e3 ", d));
    EXPECT_DOUBLE_EQ(d, -2000.0);
    EXPECT_FALSE(parse_double("abc", d));
    EXPECT_FALSE(parse_double("1.5x", d));
    EXPECT_FALSE(parse_double("", d));
}

TEST(Strings, ParseDoubleRejectsNonFiniteTokens) {
    // "inf"/"nan" parse as numbers under strtod but poison every
    // downstream `< 0`-style validity check (NaN compares false), so
    // parse_double only accepts finite values.
    double d = 1.0;
    EXPECT_FALSE(parse_double("inf", d));
    EXPECT_FALSE(parse_double("-inf", d));
    EXPECT_FALSE(parse_double("infinity", d));
    EXPECT_FALSE(parse_double("nan", d));
    EXPECT_FALSE(parse_double("NaN", d));
    EXPECT_FALSE(parse_double("nan(0x1)", d));
    EXPECT_EQ(d, 1.0);  // output untouched on failure
}

TEST(Strings, ParseDoubleRejectsHexFloats) {
    // The spec grammar is decimal; strtod's hex-float extension is not
    // part of it.
    double d = 1.0;
    EXPECT_FALSE(parse_double("0x10", d));
    EXPECT_FALSE(parse_double("0x1.8p1", d));
    EXPECT_FALSE(parse_double("0X2", d));
}

TEST(Strings, ParseDoubleRejectsOverflowKeepsUnderflow) {
    double d = 1.0;
    EXPECT_FALSE(parse_double("1e999", d));   // overflow to +HUGE_VAL
    EXPECT_FALSE(parse_double("-1e999", d));  // overflow to -HUGE_VAL
    EXPECT_EQ(d, 1.0);
    // Gradual underflow keeps the nearest representable value.
    EXPECT_TRUE(parse_double("1e-320", d));
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1e-300);
    EXPECT_TRUE(parse_double("1e-999", d));
    EXPECT_EQ(d, 0.0);
}

TEST(Strings, ParseInt) {
    int v = 0;
    EXPECT_TRUE(parse_int("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parse_int("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(parse_int("4.2", v));
    EXPECT_FALSE(parse_int("", v));
}

TEST(Strings, ParseIntRejectsOutOfRange) {
    // 2^31 used to come back silently truncated through the long->int
    // cast; out-of-range input is now a parse failure.
    int v = 123;
    EXPECT_FALSE(parse_int("2147483648", v));
    EXPECT_FALSE(parse_int("-2147483649", v));
    EXPECT_FALSE(parse_int("99999999999999999999", v));  // beyond long too
    EXPECT_EQ(v, 123);  // output untouched on failure
    EXPECT_TRUE(parse_int("2147483647", v));
    EXPECT_EQ(v, 2147483647);
    EXPECT_TRUE(parse_int("-2147483648", v));
    EXPECT_EQ(v, -2147483648);
}

TEST(Strings, ParseInt64) {
    long long v = 0;
    EXPECT_TRUE(parse_int64("3000000000", v));  // beyond 32-bit range
    EXPECT_EQ(v, 3000000000LL);
    EXPECT_TRUE(parse_int64(" -9 ", v));
    EXPECT_EQ(v, -9);
    EXPECT_FALSE(parse_int64("4.2", v));
    EXPECT_FALSE(parse_int64("", v));
}

TEST(Strings, ParseInt64RejectsOutOfRange) {
    long long v = 5;
    EXPECT_FALSE(parse_int64("9223372036854775808", v));   // 2^63
    EXPECT_FALSE(parse_int64("-9223372036854775809", v));  // -(2^63)-1
    EXPECT_EQ(v, 5);
    EXPECT_TRUE(parse_int64("9223372036854775807", v));
    EXPECT_EQ(v, 9223372036854775807LL);
}

TEST(Table, ArityChecked) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({Cell{std::string("x")}}), std::invalid_argument);
    t.add_row({std::string("x"), 1.5});
    EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, CsvEscaping) {
    Table t({"name", "v"});
    t.add_row({std::string("a,b"), static_cast<long long>(1)});
    t.add_row({std::string("q\"q"), static_cast<long long>(2)});
    std::ostringstream os;
    t.write_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("\"q\"\"q\""), std::string::npos);
}

TEST(Table, PrettyAligned) {
    Table t({"col", "value"});
    t.add_row({std::string("x"), 12.5});
    std::ostringstream os;
    t.write_pretty(os);
    EXPECT_NE(os.str().find("col"), std::string::npos);
    EXPECT_NE(os.str().find("12.5"), std::string::npos);
}

}  // namespace
}  // namespace sunfloor
