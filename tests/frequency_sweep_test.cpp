// Tests for the frequency sweep (the outer loop of Fig. 3).
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.partition.num_starts = 4;
    cfg.run_floorplan = false;
    cfg.max_switches = 10;
    return cfg;
}

TEST(FrequencySweep, EachPointUsesItsFrequency) {
    DesignSpec spec = make_d38_tvopd();
    Synthesizer synth(spec, fast_cfg());
    const auto sweep =
        synth.run_frequency_sweep({400e6, 600e6}, SynthesisPhase::Phase1);
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep[0].freq_hz, 400e6);
    EXPECT_DOUBLE_EQ(sweep[1].freq_hz, 600e6);
    EXPECT_GT(sweep[0].result.num_valid(), 0);
}

TEST(FrequencySweep, HigherFrequencyShrinksMaxSwitch) {
    // At higher operating points the max switch radix falls, so the
    // smallest feasible switch count rises (the Fig. 10/11 "plot starts at
    // 3 switches" effect, frequency-dependent).
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 12;
    Synthesizer synth(spec, cfg);
    const auto sweep =
        synth.run_frequency_sweep({300e6, 700e6}, SynthesisPhase::Phase1);
    auto min_valid_switches = [](const SynthesisResult& r) {
        int m = 1 << 20;
        for (const auto& p : r.points)
            if (p.valid) m = std::min(m, p.switch_count);
        return m;
    };
    const int slow = min_valid_switches(sweep[0].result);
    const int fast = min_valid_switches(sweep[1].result);
    EXPECT_LE(slow, fast);
}

TEST(FrequencySweep, BestOverSweepPicksGlobalMinimum) {
    DesignSpec spec = make_d38_tvopd();
    Synthesizer synth(spec, fast_cfg());
    const auto sweep =
        synth.run_frequency_sweep({400e6, 500e6}, SynthesisPhase::Phase1);
    const auto [fi, pi] = best_power_over_sweep(sweep);
    ASSERT_GE(fi, 0);
    const double best =
        sweep[static_cast<std::size_t>(fi)]
            .result.points[static_cast<std::size_t>(pi)]
            .report.power.total_mw();
    for (const auto& fp : sweep)
        for (const auto& p : fp.result.points)
            if (p.valid) {
                EXPECT_GE(p.report.power.total_mw(), best - 1e-9);
            }
}

TEST(FrequencySweep, LowerFrequencyUsuallyCheaper) {
    // The paper found the best power points at the lowest feasible
    // frequency for D_26_media; idle power scales with f.
    DesignSpec spec = make_d26_media();
    SynthesisConfig cfg = fast_cfg();
    cfg.max_switches = 12;
    Synthesizer synth(spec, cfg);
    const auto sweep =
        synth.run_frequency_sweep({400e6, 800e6}, SynthesisPhase::Phase1);
    const int b0 = sweep[0].result.best_power_index();
    const int b1 = sweep[1].result.best_power_index();
    ASSERT_GE(b0, 0);
    if (b1 >= 0) {
        EXPECT_LE(sweep[0]
                      .result.points[static_cast<std::size_t>(b0)]
                      .report.power.total_mw(),
                  sweep[1]
                          .result.points[static_cast<std::size_t>(b1)]
                          .report.power.total_mw() *
                      1.05);
    }
}

TEST(FrequencySweep, EmptySweep) {
    DesignSpec spec = make_d38_tvopd();
    Synthesizer synth(spec, fast_cfg());
    EXPECT_TRUE(synth.run_frequency_sweep({}).empty());
    EXPECT_EQ(best_power_over_sweep({}).first, -1);
}

TEST(FrequencySweep, ConfigRestoredAfterSweep) {
    DesignSpec spec = make_d38_tvopd();
    SynthesisConfig cfg = fast_cfg();
    cfg.eval.freq_hz = 450e6;
    Synthesizer synth(spec, cfg);
    synth.run_frequency_sweep({300e6});
    EXPECT_DOUBLE_EQ(synth.config().eval.freq_hz, 450e6);
}

}  // namespace
}  // namespace sunfloor
