// Tests for the channel-dependency-graph deadlock analysis.
#include <gtest/gtest.h>

#include "sunfloor/graph/algorithms.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/spec/parser.h"

namespace sunfloor {
namespace {

// Spec with 4 cores on one layer and a ring-capable switch set.
DesignSpec ring_spec() {
    DesignSpec spec;
    for (int i = 0; i < 4; ++i) {
        Core c;
        c.name = "c" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        c.layer = 0;
        spec.cores.add_core(c);
    }
    // Flows around the ring c0->c1->c2->c3->c0.
    for (int i = 0; i < 4; ++i)
        spec.comm.add_flow({i, (i + 1) % 4, 10, 0, FlowType::Request});
    return spec;
}

// Build a 4-switch ring topology; `turn` controls whether the flows are
// routed the cyclic way (deadlock) or each over its own direct hop (free).
Topology ring_topology(const DesignSpec& spec, bool cyclic) {
    Topology t(spec.cores, spec.comm.num_flows());
    for (int i = 0; i < 4; ++i)
        t.add_switch("s" + std::to_string(i), 0, {0, 0});
    std::vector<int> c2s;
    std::vector<int> s2c;
    std::vector<int> ring;
    for (int i = 0; i < 4; ++i) {
        c2s.push_back(t.add_link(NodeRef::core(i), NodeRef::sw(i)));
        s2c.push_back(t.add_link(NodeRef::sw(i), NodeRef::core(i)));
        ring.push_back(t.add_link(NodeRef::sw(i), NodeRef::sw((i + 1) % 4)));
    }
    for (int i = 0; i < 4; ++i) {
        const int j = (i + 1) % 4;
        if (cyclic) {
            // Route around two ring hops: uses consecutive ring links,
            // closing the channel dependency cycle.
            const int k = (i + 2) % 4;
            t.set_flow_path(i, spec.comm.flow(i),
                            {c2s[i], ring[i], ring[j], s2c[k]});
        } else {
            t.set_flow_path(i, spec.comm.flow(i),
                            {c2s[i], ring[i], s2c[j]});
        }
    }
    return t;
}

TEST(Deadlock, SingleHopRingIsFree) {
    const auto spec = ring_spec();
    const auto t = ring_topology(spec, false);
    EXPECT_FALSE(has_cycle(build_cdg(t)));
    EXPECT_TRUE(is_routing_deadlock_free(t));
}

TEST(Deadlock, TwoHopRingDeadlocks) {
    // Classic 4-ring cyclic dependency: each flow holds one ring link and
    // waits for the next.
    auto spec = ring_spec();
    // Flows now go two hops: c_i -> c_{i+2}.
    DesignSpec spec2;
    spec2.cores = spec.cores;
    for (int i = 0; i < 4; ++i)
        spec2.comm.add_flow({i, (i + 2) % 4, 10, 0, FlowType::Request});
    const auto t = ring_topology(spec2, true);
    EXPECT_TRUE(has_cycle(build_cdg(t)));
    EXPECT_FALSE(is_routing_deadlock_free(t));
}

TEST(Deadlock, ClassCdgFiltersByClass) {
    DesignSpec spec;
    for (int i = 0; i < 2; ++i) {
        Core c;
        c.name = "c" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        spec.cores.add_core(c);
    }
    spec.comm.add_flow({0, 1, 10, 0, FlowType::Request});
    spec.comm.add_flow({1, 0, 10, 0, FlowType::Response});
    Topology t(spec.cores, 2);
    const int s0 = t.add_switch("s0", 0);
    const int s1 = t.add_switch("s1", 0);
    const int a = t.add_link(NodeRef::core(0), NodeRef::sw(s0));
    const int b = t.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    const int c = t.add_link(NodeRef::sw(s1), NodeRef::core(1));
    t.set_flow_path(0, spec.comm.flow(0), {a, b, c});
    const int d =
        t.add_link(NodeRef::core(1), NodeRef::sw(s1), FlowType::Response);
    const int e =
        t.add_link(NodeRef::sw(s1), NodeRef::sw(s0), FlowType::Response);
    const int f =
        t.add_link(NodeRef::sw(s0), NodeRef::core(0), FlowType::Response);
    t.set_flow_path(1, spec.comm.flow(1), {d, e, f});

    EXPECT_EQ(build_class_cdg(t, FlowType::Request).num_edges(), 2);
    EXPECT_EQ(build_class_cdg(t, FlowType::Response).num_edges(), 2);
    EXPECT_TRUE(classes_are_separated(t, spec.comm));

    // Extended CDG gains the turnaround edge c -> d (request into core 1
    // couples to the response out of core 1) but stays acyclic.
    const auto ext = build_extended_cdg(t, spec.comm);
    EXPECT_TRUE(ext.find_edge(c, d).has_value());
    EXPECT_TRUE(is_message_dependent_deadlock_free(t, spec.comm));
}

TEST(Deadlock, SharedChannelDetected) {
    DesignSpec spec;
    for (int i = 0; i < 2; ++i) {
        Core c;
        c.name = "x" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        spec.cores.add_core(c);
    }
    spec.comm.add_flow({0, 1, 10, 0, FlowType::Request});
    Topology t(spec.cores, 1);
    const int s = t.add_switch("s", 0);
    // Route the request over response-class links: separation violated.
    const int a = t.add_link(NodeRef::core(0), NodeRef::sw(s),
                             FlowType::Response);
    const int b = t.add_link(NodeRef::sw(s), NodeRef::core(1),
                             FlowType::Response);
    // set_flow_path itself rejects the class mismatch.
    EXPECT_THROW(t.set_flow_path(0, spec.comm.flow(0), {a, b}),
                 std::invalid_argument);
}

TEST(Deadlock, UnroutedFlowsIgnored) {
    const auto spec = ring_spec();
    Topology t(spec.cores, spec.comm.num_flows());
    EXPECT_TRUE(is_routing_deadlock_free(t));  // no paths, no dependencies
    EXPECT_TRUE(is_message_dependent_deadlock_free(t, spec.comm));
}

// --- negative cases: every check must actually fire ---------------------

TEST(Deadlock, SeededCdgCycleIsCaughtByEveryGraph) {
    // Hand-seed the classic cyclic dependency (each flow holds one ring
    // link while waiting for the next): the plain CDG, the per-class CDG
    // and the extended CDG must all contain the cycle, and the
    // deadlock-freedom predicates must say no.
    DesignSpec spec;
    spec.cores = ring_spec().cores;
    for (int i = 0; i < 4; ++i)
        spec.comm.add_flow({i, (i + 2) % 4, 10, 0, FlowType::Request});
    const auto t = ring_topology(spec, true);
    EXPECT_TRUE(has_cycle(build_cdg(t)));
    EXPECT_TRUE(has_cycle(build_class_cdg(t, FlowType::Request)));
    EXPECT_TRUE(has_cycle(build_extended_cdg(t, spec.comm)));
    EXPECT_FALSE(is_routing_deadlock_free(t));
    EXPECT_FALSE(is_message_dependent_deadlock_free(t, spec.comm));
    // The cycle lives entirely in the request class; separation holds.
    EXPECT_TRUE(classes_are_separated(t, spec.comm));
}

TEST(Deadlock, MixedClassLinksCoupleRequestsAndResponses) {
    // Responses routed over request-class channels: the per-path CDG
    // stays acyclic (the two directions never chain), but class
    // separation is violated and the request->response coupling closes a
    // cycle through the shared channels — exactly the failure mode the
    // extended CDG exists to catch.
    DesignSpec spec;
    for (int i = 0; i < 2; ++i) {
        Core c;
        c.name = "m" + std::to_string(i);
        c.width = 1;
        c.height = 1;
        spec.cores.add_core(c);
    }
    spec.comm.add_flow({0, 1, 10, 0, FlowType::Request});   // f0
    spec.comm.add_flow({1, 0, 10, 0, FlowType::Response});  // f1 (misrouted)
    spec.comm.add_flow({1, 0, 10, 0, FlowType::Request});   // f2
    spec.comm.add_flow({0, 1, 10, 0, FlowType::Response});  // f3 (misrouted)
    Topology t(spec.cores, 4);
    const int s0 = t.add_switch("s0", 0);
    const int s1 = t.add_switch("s1", 0);
    // Request-class channels only — both directions.
    const int c0s0 = t.add_link(NodeRef::core(0), NodeRef::sw(s0));
    const int f01 = t.add_link(NodeRef::sw(s0), NodeRef::sw(s1));
    const int s1c1 = t.add_link(NodeRef::sw(s1), NodeRef::core(1));
    const int c1s1 = t.add_link(NodeRef::core(1), NodeRef::sw(s1));
    const int f10 = t.add_link(NodeRef::sw(s1), NodeRef::sw(s0));
    const int s0c0 = t.add_link(NodeRef::sw(s0), NodeRef::core(0));
    t.set_flow_path(0, spec.comm.flow(0), {c0s0, f01, s1c1});
    // Route the responses over the request links by lying to
    // set_flow_path about their class (the misconfiguration under test —
    // a correct flow would use disjoint response channels).
    Flow resp10 = spec.comm.flow(1);
    resp10.type = FlowType::Request;
    t.set_flow_path(1, resp10, {c1s1, f10, s0c0});
    t.set_flow_path(2, spec.comm.flow(2), {c1s1, f10, s0c0});
    Flow resp01 = spec.comm.flow(3);
    resp01.type = FlowType::Request;
    t.set_flow_path(3, resp01, {c0s0, f01, s1c1});

    // Paths alone: no cycle (the two directions never chain).
    EXPECT_TRUE(is_routing_deadlock_free(t));
    // Separation check fires on the misrouted responses.
    EXPECT_FALSE(classes_are_separated(t, spec.comm));
    // Extended CDG closes the loop: f0 couples into the responses leaving
    // core 1, which share channels with f2, which couples into the
    // responses leaving core 0, which share channels with f0.
    const Digraph ext = build_extended_cdg(t, spec.comm);
    EXPECT_TRUE(ext.find_edge(s1c1, c1s1).has_value());
    EXPECT_TRUE(ext.find_edge(s0c0, c0s0).has_value());
    EXPECT_TRUE(has_cycle(ext));
    EXPECT_FALSE(is_message_dependent_deadlock_free(t, spec.comm));
}

}  // namespace
}  // namespace sunfloor
