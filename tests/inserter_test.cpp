// Tests for the custom NoC-insertion routine and the standard baseline.
#include <gtest/gtest.h>

#include "sunfloor/floorplan/inserter.h"
#include "sunfloor/floorplan/standard_inserter.h"

namespace sunfloor {
namespace {

double overlap_of(const InsertionResult& r) {
    std::vector<Rect> all = r.fixed_rects;
    all.insert(all.end(), r.inserted_rects.begin(), r.inserted_rects.end());
    return total_overlap(all);
}

TEST(Inserter, PlacesIntoFreeSpaceAtIdeal) {
    // Empty floorplan around the ideal: block goes exactly there.
    const std::vector<Rect> fixed{{0, 0, 2, 2}};
    const std::vector<InsertBlock> blocks{{0.5, 0.5, {5.0, 5.0}, "sw"}};
    const auto r = insert_blocks_custom(fixed, blocks);
    EXPECT_NEAR(r.inserted_rects[0].center().x, 5.0, 1e-9);
    EXPECT_NEAR(r.inserted_rects[0].center().y, 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.total_displacement, 0.0);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
}

TEST(Inserter, FindsNearbyGap) {
    // Ideal sits on a core; a gap exists just right of it.
    const std::vector<Rect> fixed{{0, 0, 2, 2}, {3, 0, 2, 2}};
    const std::vector<InsertBlock> blocks{{0.8, 0.8, {1.0, 1.0}, "sw"}};
    const auto r = insert_blocks_custom(fixed, blocks);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
    // Should use the gap (2..3) x or space above, not displace anything.
    EXPECT_DOUBLE_EQ(r.total_displacement, 0.0);
    EXPECT_LT(r.total_deviation, 2.5);
}

TEST(Inserter, DisplacesWhenDenseAndStaysLegal) {
    // A 3x3 grid of abutting cores with the ideal dead center: no free
    // space within reach, so blocks must shift.
    std::vector<Rect> fixed;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            fixed.push_back({i * 2.0, j * 2.0, 2.0, 2.0});
    const std::vector<InsertBlock> blocks{{1.0, 1.0, {3.0, 3.0}, "sw"}};
    InsertionOptions opts;
    opts.max_search_radius_die_ratio = 0.01;  // force displacement
    opts.min_search_radius_ratio = 0.1;
    const auto r = insert_blocks_custom(fixed, blocks, opts);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
    EXPECT_GT(r.total_displacement, 0.0);
    // Die grows by about the inserted width, not more than a couple mm.
    EXPECT_LE(r.die_width * r.die_height, 6.0 * 6.0 * 1.4 + 3);
}

TEST(Inserter, ManyInsertionsReuseGaps) {
    std::vector<Rect> fixed;
    for (int i = 0; i < 4; ++i) fixed.push_back({i * 2.0, 0.0, 2.0, 2.0});
    std::vector<InsertBlock> blocks;
    for (int b = 0; b < 6; ++b)
        blocks.push_back({0.4, 0.4, {1.0 + b * 1.0, 1.0}, "sw"});
    const auto r = insert_blocks_custom(fixed, blocks);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
    EXPECT_EQ(r.inserted_rects.size(), 6u);
}

TEST(Inserter, EmptyBlocksListKeepsFloorplan) {
    const std::vector<Rect> fixed{{0, 0, 2, 2}, {2, 0, 2, 2}};
    const auto r = insert_blocks_custom(fixed, {});
    EXPECT_EQ(r.fixed_rects, fixed);
    EXPECT_DOUBLE_EQ(r.die_width, 4.0);
}

TEST(Inserter, EmptyFloorplanAcceptsBlocks) {
    const std::vector<InsertBlock> blocks{{1.0, 1.0, {2.0, 2.0}, "a"},
                                          {1.0, 1.0, {2.0, 2.0}, "b"}};
    const auto r = insert_blocks_custom({}, blocks);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
    EXPECT_EQ(r.inserted_rects.size(), 2u);
}

TEST(StandardInserter, ProducesLegalFloorplan) {
    std::vector<Rect> fixed;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            fixed.push_back({i * 2.0, j * 2.0, 2.0, 2.0});
    std::vector<InsertBlock> blocks{{0.5, 0.5, {3.0, 3.0}, "s0"},
                                    {0.5, 0.5, {1.0, 5.0}, "s1"}};
    StandardInsertOptions opts;
    Rng rng(11);
    const auto r = insert_blocks_standard(fixed, blocks, opts, rng);
    EXPECT_DOUBLE_EQ(overlap_of(r), 0.0);
    EXPECT_EQ(r.inserted_rects.size(), 2u);
    EXPECT_GT(r.die_width, 0.0);
}

TEST(StandardInserter, CoreRelativeOrderMaintained) {
    // Cores in a strict left-to-right row: the constrained annealer may
    // not swap them (the paper's "maintaining the relative positions").
    std::vector<Rect> fixed{{0, 0, 1, 1}, {2, 0, 1, 1}, {4, 0, 1, 1}};
    std::vector<InsertBlock> blocks{{0.4, 0.4, {2.5, 0.5}, "sw"}};
    StandardInsertOptions opts;
    Rng rng(12);
    const auto r = insert_blocks_standard(fixed, blocks, opts, rng);
    EXPECT_LT(r.fixed_rects[0].center().x, r.fixed_rects[1].center().x);
    EXPECT_LT(r.fixed_rects[1].center().x, r.fixed_rects[2].center().x);
}

TEST(InserterComparison, CustomTracksIdealsBetter) {
    // With gaps available near the ideals, the custom routine's deviation
    // should be small in absolute terms.
    std::vector<Rect> fixed;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            fixed.push_back({i * 2.5, j * 2.5, 2.0, 2.0});  // 0.5 mm streets
    std::vector<InsertBlock> blocks;
    for (int b = 0; b < 4; ++b)
        blocks.push_back({0.4, 0.4, {2.2 + b * 0.8, 2.2}, "sw"});
    const auto custom = insert_blocks_custom(fixed, blocks);
    EXPECT_DOUBLE_EQ(overlap_of(custom), 0.0);
    EXPECT_LT(custom.total_deviation / 4.0, 1.5);  // avg < 1.5 mm
}

}  // namespace
}  // namespace sunfloor
