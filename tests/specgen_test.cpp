// Property tests for the parametric spec generators: determinism,
// structural validity, knob behaviour, parser round-trips, and the
// thread-count bit-determinism of family sweeps through the explorer.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <tuple>

#include "sunfloor/explore/family_sweep.h"
#include "sunfloor/spec/parser.h"
#include "sunfloor/specgen/specgen.h"
#include "sunfloor/util/strings.h"

namespace sunfloor {
namespace {

using specgen::GenFamily;
using specgen::GenParams;

constexpr GenFamily kFamilies[] = {GenFamily::Pipeline,
                                   GenFamily::HubAndSpoke,
                                   GenFamily::LayeredDag};

std::string spec_text(const DesignSpec& spec) {
    std::ostringstream os;
    write_design(os, spec);
    return os.str();
}

/// Structural invariants every generated spec must satisfy.
void check_valid(const DesignSpec& spec, const GenParams& p) {
    ASSERT_EQ(spec.cores.num_cores(), p.num_cores);
    EXPECT_TRUE(spec.cores.placement_is_legal());
    // Gap-free layer assignment: layers 0..num_layers()-1 all populated,
    // within the requested bound.
    const int layers = spec.cores.num_layers();
    EXPECT_LE(layers, p.num_layers);
    for (int ly = 0; ly < layers; ++ly)
        EXPECT_FALSE(spec.cores.cores_in_layer(ly).empty()) << "layer " << ly;
    // Flows: finite positive bandwidth, positive latency, no duplicates.
    ASSERT_GT(spec.comm.num_flows(), 0);
    std::set<std::tuple<int, int, FlowType>> seen;
    std::vector<double> core_agg(static_cast<std::size_t>(p.num_cores), 0.0);
    for (const Flow& f : spec.comm.flows()) {
        EXPECT_GT(f.bw_mbps, 0.0);
        EXPECT_GT(f.max_latency_cycles, 0.0);
        EXPECT_TRUE(seen.emplace(f.src, f.dst, f.type).second)
            << "duplicate flow " << f.src << "->" << f.dst;
        core_agg[static_cast<std::size_t>(f.src)] += f.bw_mbps;
        core_agg[static_cast<std::size_t>(f.dst)] += f.bw_mbps;
    }
    // The most-loaded core aggregates peak_core_bw_mbps, up to the %.6g
    // per-flow quantization.
    double max_agg = 0.0;
    for (double a : core_agg) max_agg = std::max(max_agg, a);
    EXPECT_NEAR(max_agg, p.peak_core_bw_mbps,
                1e-4 * p.peak_core_bw_mbps);
}

TEST(SpecGen, FamilyCodecRoundTrips) {
    for (GenFamily f : kFamilies) {
        GenFamily parsed;
        ASSERT_TRUE(
            specgen::family_from_string(specgen::family_to_string(f), parsed));
        EXPECT_EQ(parsed, f);
    }
    GenFamily f;
    EXPECT_TRUE(specgen::family_from_string("hub-and-spoke", f));
    EXPECT_EQ(f, GenFamily::HubAndSpoke);
    EXPECT_TRUE(specgen::family_from_string("DAG", f));
    EXPECT_EQ(f, GenFamily::LayeredDag);
    EXPECT_FALSE(specgen::family_from_string("mesh", f));
    EXPECT_EQ(specgen::family_choices(), "pipeline|hub|layered-dag");
}

TEST(SpecGen, GenerateIsDeterministic) {
    for (GenFamily fam : kFamilies) {
        GenParams p;
        p.family = fam;
        p.bw_skew = 1.0;
        const DesignSpec a = specgen::generate(p, 42);
        const DesignSpec b = specgen::generate(p, 42);
        EXPECT_EQ(spec_text(a), spec_text(b));
        // Bit-exact, not just text-exact.
        ASSERT_EQ(a.comm.num_flows(), b.comm.num_flows());
        for (int i = 0; i < a.comm.num_flows(); ++i) {
            EXPECT_EQ(double_bits(a.comm.flow(i).bw_mbps),
                      double_bits(b.comm.flow(i).bw_mbps));
            EXPECT_EQ(double_bits(a.comm.flow(i).max_latency_cycles),
                      double_bits(b.comm.flow(i).max_latency_cycles));
        }
    }
}

TEST(SpecGen, SeedsAndFamiliesProduceDistinctSpecs) {
    GenParams p;
    std::set<std::string> texts;
    for (GenFamily fam : kFamilies) {
        p.family = fam;
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            EXPECT_TRUE(texts.insert(spec_text(specgen::generate(p, seed)))
                            .second)
                << specgen::family_to_string(fam) << " seed " << seed;
    }
    EXPECT_EQ(texts.size(), 15u);
}

TEST(SpecGen, ValidateRejectsEachBadKnob) {
    const auto reject = [](GenParams p, const char* what) {
        EXPECT_THROW(p.validate(), std::invalid_argument) << what;
        EXPECT_THROW(specgen::generate(p, 1), std::invalid_argument) << what;
    };
    GenParams p;
    p.num_cores = 2;
    reject(p, "num_cores too small");
    p = {};
    p.num_cores = 513;
    reject(p, "num_cores too large");
    p = {};
    p.num_layers = 0;
    reject(p, "num_layers");
    p = {};
    p.num_layers = 9;
    reject(p, "num_layers too large");
    p = {};
    p.peak_core_bw_mbps = 0.0;
    reject(p, "peak bw");
    p = {};
    p.peak_core_bw_mbps = std::numeric_limits<double>::quiet_NaN();
    reject(p, "NaN peak bw");
    p = {};
    p.peak_core_bw_mbps = 1e10;  // would overflow the bandwidth rescale
    reject(p, "peak bw too large");
    p = {};
    p.bw_skew = -0.1;
    reject(p, "negative skew");
    p = {};
    p.bw_skew = 5.0;
    reject(p, "skew too large");
    p = {};
    p.latency_slack = 0.0;
    reject(p, "latency slack");
    p = {};
    p.response_fraction = 1.5;
    reject(p, "response fraction");
    p = {};
    p.num_hubs = 0;
    reject(p, "num_hubs");
    p = {};
    p.family = GenFamily::HubAndSpoke;
    p.num_cores = 4;
    p.num_layers = 3;
    p.num_hubs = 2;
    reject(p, "cores must cover layers + hubs");
    p = {};
    p.hotspot_fraction = 0.0;
    reject(p, "hotspot fraction");
    p = {};
    p.stages = 1;
    reject(p, "stages");
    p = {};
    p.family = GenFamily::LayeredDag;
    p.stages = p.num_cores + 1;
    reject(p, "stages > cores");
    p = {};
    p.max_fanout = 0;
    reject(p, "fanout");

    // Cross-field interactions bind only for the family that reads the
    // fields: small pipeline/hub specs are fine with default DAG/hub
    // knobs that would be inconsistent elsewhere.
    p = {};
    p.num_cores = 4;  // < default stages (6), and < layers + hubs (5)
    EXPECT_NO_THROW(p.validate());
    EXPECT_NO_THROW(specgen::generate(p, 1));
    p.family = GenFamily::LayeredDag;
    reject(p, "dag binds stages <= cores");
}

// Hundreds of members per family: every one is structurally valid and
// survives a write -> parse -> write round trip byte-identically, with
// every parsed field bit-identical to the generated one.
TEST(SpecGen, HundredsOfMembersPerFamilyAreValidAndRoundTrip) {
    for (GenFamily fam : kFamilies) {
        GenParams p;
        p.family = fam;
        p.bw_skew = 1.0;
        for (std::uint64_t seed = 0; seed < 120; ++seed) {
            SCOPED_TRACE(format("%s seed %llu",
                                specgen::family_to_string(fam),
                                static_cast<unsigned long long>(seed)));
            const DesignSpec spec = specgen::generate(p, seed);
            check_valid(spec, p);

            const std::string text = spec_text(spec);
            std::istringstream is(text);
            const ParseResult r = parse_design(is, spec.name);
            ASSERT_TRUE(r.ok) << r.error;
            EXPECT_EQ(spec_text(r.spec), text);  // byte-identical
            ASSERT_EQ(r.spec.cores.num_cores(), spec.cores.num_cores());
            ASSERT_EQ(r.spec.comm.num_flows(), spec.comm.num_flows());
            for (int i = 0; i < spec.cores.num_cores(); ++i) {
                const Core& g = spec.cores.core(i);
                const Core& q = r.spec.cores.core(i);
                EXPECT_EQ(q.name, g.name);
                EXPECT_EQ(q.layer, g.layer);
                EXPECT_EQ(double_bits(q.width), double_bits(g.width));
                EXPECT_EQ(double_bits(q.height), double_bits(g.height));
                EXPECT_EQ(double_bits(q.position.x),
                          double_bits(g.position.x));
                EXPECT_EQ(double_bits(q.position.y),
                          double_bits(g.position.y));
            }
            for (int i = 0; i < spec.comm.num_flows(); ++i) {
                const Flow& g = spec.comm.flow(i);
                const Flow& q = r.spec.comm.flow(i);
                EXPECT_EQ(q.src, g.src);
                EXPECT_EQ(q.dst, g.dst);
                EXPECT_EQ(q.type, g.type);
                EXPECT_EQ(double_bits(q.bw_mbps), double_bits(g.bw_mbps));
                EXPECT_EQ(double_bits(q.max_latency_cycles),
                          double_bits(g.max_latency_cycles));
            }
        }
    }
}

// Knob extremes stay valid (the fuzz harness leans on this).
TEST(SpecGen, ExtremeKnobsStillGenerateValidSpecs) {
    std::vector<GenParams> cases;
    GenParams p;
    p.num_cores = 3;
    p.num_layers = 1;
    p.num_hubs = 1;
    p.stages = 2;
    cases.push_back(p);
    p = {};
    p.num_layers = 8;
    p.num_cores = 24;
    cases.push_back(p);
    p = {};
    p.bw_skew = 4.0;
    cases.push_back(p);
    p = {};
    p.response_fraction = 0.0;
    cases.push_back(p);
    p = {};
    p.response_fraction = 1.0;
    cases.push_back(p);
    p = {};
    p.family = GenFamily::HubAndSpoke;
    p.hotspot_fraction = 1.0;
    cases.push_back(p);
    p = {};
    p.family = GenFamily::HubAndSpoke;
    p.num_hubs = 16;
    p.num_cores = 40;
    cases.push_back(p);
    p = {};
    p.family = GenFamily::LayeredDag;
    p.stages = 24;  // one core per stage
    cases.push_back(p);
    p = {};
    p.family = GenFamily::LayeredDag;
    p.max_fanout = 16;
    cases.push_back(p);
    p = {};
    p.num_cores = 512;
    p.family = GenFamily::LayeredDag;
    cases.push_back(p);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        SCOPED_TRACE(i);
        const DesignSpec spec = specgen::generate(cases[i], 9);
        check_valid(spec, cases[i]);
    }
}

TEST(SpecGen, SkewKnobSweepsUniformToZipf) {
    GenParams p;
    p.family = GenFamily::LayeredDag;
    const auto bw_ratio = [&](double skew) {
        p.bw_skew = skew;
        const DesignSpec spec = specgen::generate(p, 11);
        double lo = 0.0;
        double hi = 0.0;
        for (const Flow& f : spec.comm.flows()) {
            hi = std::max(hi, f.bw_mbps);
            lo = lo == 0.0 ? f.bw_mbps : std::min(lo, f.bw_mbps);
        }
        return hi / lo;
    };
    EXPECT_NEAR(bw_ratio(0.0), 1.0, 1e-9);  // uniform
    const double mild = bw_ratio(1.0);
    const double hot = bw_ratio(3.0);
    EXPECT_GT(mild, 3.0);   // Zipf-ish spread over >= 20 flows
    EXPECT_GT(hot, mild * 5.0);  // monotone: hotter skew, hotter flows
}

TEST(SpecGen, HubFamilyPinsHotspotFraction) {
    GenParams p;
    p.family = GenFamily::HubAndSpoke;
    p.num_cores = 30;
    p.num_hubs = 3;
    for (double h : {0.4, 0.75, 0.9}) {
        p.hotspot_fraction = h;
        const DesignSpec spec = specgen::generate(p, 5);
        double hub_bw = 0.0;
        double total = 0.0;
        for (const Flow& f : spec.comm.flows()) {
            total += f.bw_mbps;
            if (f.src < p.num_hubs || f.dst < p.num_hubs)
                hub_bw += f.bw_mbps;
        }
        EXPECT_NEAR(hub_bw / total, h, 1e-4) << "hotspot " << h;
        // Exactly num_hubs hub-named cores on the middle layer.
        for (int i = 0; i < p.num_hubs; ++i)
            EXPECT_EQ(spec.cores.core(i).name, format("hub%d", i));
    }
}

// The pin must hold even on the tiniest hub specs, where the random
// background draws can all collide — the generator falls back to one
// deterministic background pair rather than silently emitting 100% hub
// bandwidth.
TEST(SpecGen, HubHotspotFractionHoldsOnTinySpecs) {
    GenParams p;
    p.family = GenFamily::HubAndSpoke;
    p.num_cores = 3;
    p.num_hubs = 1;
    p.num_layers = 1;
    p.hotspot_fraction = 0.4;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const DesignSpec spec = specgen::generate(p, seed);
        double hub_bw = 0.0;
        double total = 0.0;
        for (const Flow& f : spec.comm.flows()) {
            total += f.bw_mbps;
            if (f.src == 0 || f.dst == 0) hub_bw += f.bw_mbps;
        }
        EXPECT_NEAR(hub_bw / total, 0.4, 1e-4) << "seed " << seed;
    }
}

TEST(SpecGen, PipelineResponsePairing) {
    GenParams p;
    p.family = GenFamily::Pipeline;
    p.num_cores = 40;
    p.response_fraction = 0.0;
    DesignSpec spec = specgen::generate(p, 3);
    EXPECT_EQ(spec.comm.num_flows(), p.num_cores - 1);  // chain only
    for (const Flow& f : spec.comm.flows()) {
        EXPECT_EQ(f.dst, f.src + 1);
        EXPECT_EQ(f.type, FlowType::Request);
    }
    p.response_fraction = 1.0;
    spec = specgen::generate(p, 3);
    EXPECT_EQ(spec.comm.num_flows(), 2 * (p.num_cores - 1));
    int responses = 0;
    for (const Flow& f : spec.comm.flows())
        responses += f.type == FlowType::Response ? 1 : 0;
    EXPECT_EQ(responses, p.num_cores - 1);
}

TEST(SpecGen, FamilySeedsAreConsecutive) {
    const auto seeds = family_seeds(100, 3);
    EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102}));
    EXPECT_TRUE(family_seeds(1, 0).empty());
}

// The acceptance property: exploring a generated family is bit-identical
// across thread counts — same Pareto entries, same reports, member by
// member.
TEST(SpecGen, FamilySweepIsThreadCountBitIdentical) {
    GenParams gen;
    gen.family = GenFamily::Pipeline;
    gen.num_cores = 10;

    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 4;

    ParamGrid grid;
    grid.set_axis(ParamAxis::frequencies_hz({400e6, 500e6}));
    grid.set_axis(ParamAxis::max_tsvs({15, 25}));

    const auto seeds = family_seeds(1, 3);
    const auto run = [&](int threads) {
        ExploreOptions opts;
        opts.num_threads = threads;
        return explore_generated_family(gen, seeds, cfg, grid, opts);
    };
    const FamilySweepResult serial = run(1);
    const FamilySweepResult parallel = run(4);

    ASSERT_EQ(serial.members.size(), parallel.members.size());
    EXPECT_GT(serial.total_valid_designs, 0);
    EXPECT_EQ(serial.total_valid_designs, parallel.total_valid_designs);
    for (std::size_t m = 0; m < serial.members.size(); ++m) {
        const auto& a = serial.members[m];
        const auto& b = parallel.members[m];
        EXPECT_EQ(a.spec_name, b.spec_name);
        ASSERT_EQ(a.result.pareto.size(), b.result.pareto.size());
        for (std::size_t e = 0; e < a.result.pareto.size(); ++e) {
            EXPECT_EQ(a.result.pareto[e].point_index,
                      b.result.pareto[e].point_index);
            EXPECT_EQ(a.result.pareto[e].design_index,
                      b.result.pareto[e].design_index);
            const EvalReport& ra = a.result.design(a.result.pareto[e]).report;
            const EvalReport& rb = b.result.design(b.result.pareto[e]).report;
            EXPECT_EQ(double_bits(ra.power.total_mw()),
                      double_bits(rb.power.total_mw()));
            EXPECT_EQ(double_bits(ra.avg_latency_cycles),
                      double_bits(rb.avg_latency_cycles));
        }
    }

    // And independent of the seed list: member 0 alone == member 0 of 3.
    const FamilySweepResult solo = [&] {
        ExploreOptions opts;
        opts.num_threads = 2;
        return explore_generated_family(gen, {seeds[0]}, cfg, grid, opts);
    }();
    ASSERT_EQ(solo.members.size(), 1u);
    EXPECT_EQ(solo.members[0].result.stats.valid_designs,
              serial.members[0].result.stats.valid_designs);
    ASSERT_EQ(solo.members[0].result.pareto.size(),
              serial.members[0].result.pareto.size());
}

}  // namespace
}  // namespace sunfloor
