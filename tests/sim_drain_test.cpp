// Drain/progress test: the runtime counterpart of the static
// deadlock-freedom proof of noc/deadlock.h. On synthesized topologies —
// whose channel dependency graphs the synthesis flow keeps acyclic —
// the wormhole simulator must drain every in-flight flit within a
// bounded number of post-injection cycles, under uniform and bursty
// traffic, long packets and deliberately tight buffers. A cycle of
// blocked flits would hit the drain bound and fail `drained`.
#include <gtest/gtest.h>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/noc/deadlock.h"
#include "sunfloor/sim/simulator.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

SynthesisConfig fast_cfg() {
    SynthesisConfig cfg;
    cfg.run_floorplan = false;
    cfg.max_switches = 6;
    return cfg;
}

TEST(SimDrain, SynthesizedTopologiesDrainUnderStress) {
    for (const char* name : {"D_36_4", "D_35_bot", "D_26_media"}) {
        SCOPED_TRACE(name);
        const DesignSpec spec = make_benchmark(name);
        const SynthesisConfig cfg = fast_cfg();
        const SynthesisResult res = run_synthesis(spec, cfg);
        const int best = res.best_power_index();
        ASSERT_GE(best, 0);
        const DesignPoint& dp = res.points[static_cast<std::size_t>(best)];

        // The static guarantees the simulator's progress rests on.
        EXPECT_TRUE(is_routing_deadlock_free(dp.topo));
        EXPECT_TRUE(is_message_dependent_deadlock_free(dp.topo, spec.comm));

        for (const sim::Traffic traffic :
             {sim::Traffic::Uniform, sim::Traffic::Bursty}) {
            sim::SimParams p;
            p.inject.traffic = traffic;
            p.inject.injection_scale = 1.0;  // full specified bandwidth
            p.inject.packet_length_flits = 6;
            p.buffer_depth_flits = 2;        // stress the credit loop
            p.warmup_cycles = 500;
            p.measure_cycles = 4000;
            p.drain_max_cycles = 20000;      // the progress bound
            const sim::SimReport rep =
                sim::simulate(dp.topo, spec, cfg.eval, p);
            EXPECT_TRUE(rep.drained)
                << sim::traffic_to_string(traffic) << ": "
                << rep.in_flight_flits_at_end << " flits stuck";
            EXPECT_EQ(rep.in_flight_flits_at_end, 0);
            // Conservation: every measured packet was delivered.
            EXPECT_EQ(rep.received_packets, rep.injected_packets);
            EXPECT_EQ(rep.received_flits, rep.injected_flits);
            EXPECT_GT(rep.injected_packets, 0);
        }
    }
}

TEST(SimDrain, DrainBoundIsReportedWhenExceeded) {
    // A zero drain budget with traffic still in flight must come back
    // drained = false (and not loop forever) — the bound is real.
    const DesignSpec spec = make_benchmark("D_36_4");
    const SynthesisConfig cfg = fast_cfg();
    const SynthesisResult res = run_synthesis(spec, cfg);
    const int best = res.best_power_index();
    ASSERT_GE(best, 0);
    const DesignPoint& dp = res.points[static_cast<std::size_t>(best)];
    sim::SimParams p;
    p.warmup_cycles = 0;
    p.measure_cycles = 3;  // stop mid-flight
    p.drain_max_cycles = 0;
    p.inject.injection_scale = 1.0;
    const sim::SimReport rep = sim::simulate(dp.topo, spec, cfg.eval, p);
    EXPECT_FALSE(rep.drained);
    EXPECT_GT(rep.in_flight_flits_at_end, 0);
    EXPECT_EQ(rep.cycles_run, 3);
}

}  // namespace
}  // namespace sunfloor
