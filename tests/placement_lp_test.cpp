// Tests for the switch-position LP (Section VII) and its cross-check
// against the weighted-median coordinate-descent solver.
#include <gtest/gtest.h>

#include "sunfloor/lp/placement_lp.h"
#include "sunfloor/util/rng.h"

namespace sunfloor {
namespace {

TEST(PlacementLp, SingleSwitchTwoEqualCores) {
    // One switch pulled equally by cores at (0,0) and (4,0): any x in [0,4]
    // is optimal with cost 4.
    PlacementProblem p;
    p.num_movable = 1;
    p.fixed_points = {{0, 0}, {4, 0}};
    p.fixed_conns = {{0, 0, 1.0}, {0, 1, 1.0}};
    const auto r = solve_placement_lp(p);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.cost, 4.0, 1e-7);
    EXPECT_GE(r.positions[0].x, -1e-9);
    EXPECT_LE(r.positions[0].x, 4.0 + 1e-9);
}

TEST(PlacementLp, WeightedPullSnapsToHeavyCore) {
    // L1 with unequal weights: optimum is at the heavier core (median).
    PlacementProblem p;
    p.num_movable = 1;
    p.fixed_points = {{0, 0}, {4, 6}};
    p.fixed_conns = {{0, 0, 1.0}, {0, 1, 3.0}};
    const auto r = solve_placement_lp(p);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.positions[0].x, 4.0, 1e-6);
    EXPECT_NEAR(r.positions[0].y, 6.0, 1e-6);
}

TEST(PlacementLp, ChainOfSwitches) {
    // core(0,0) - sw0 - sw1 - core(10,0): everything collapses onto the
    // segment; total cost = 10 regardless of split.
    PlacementProblem p;
    p.num_movable = 2;
    p.fixed_points = {{0, 0}, {10, 0}};
    p.fixed_conns = {{0, 0, 1.0}, {1, 1, 1.0}};
    p.movable_conns = {{0, 1, 1.0}};
    const auto r = solve_placement_lp(p);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.cost, 10.0, 1e-6);
}

TEST(PlacementLp, MedianMatchesLpOnRandomInstances) {
    Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        PlacementProblem p;
        p.num_movable = 3;
        for (int c = 0; c < 6; ++c)
            p.fixed_points.push_back(
                {rng.next_double() * 10.0, rng.next_double() * 10.0});
        // Anchor every movable to two cores, then chain the movables.
        for (int m = 0; m < 3; ++m) {
            p.fixed_conns.push_back({m, 2 * m, 1.0 + rng.next_double() * 4.0});
            p.fixed_conns.push_back(
                {m, 2 * m + 1, 1.0 + rng.next_double() * 4.0});
        }
        p.movable_conns = {{0, 1, 2.0}, {1, 2, 1.0}};
        const auto lp = solve_placement_lp(p);
        const auto med = solve_placement_median(p, 200);
        ASSERT_TRUE(lp.ok);
        // The LP is exact; median descent must come very close on these
        // anchored instances.
        EXPECT_LE(lp.cost, med.cost + 1e-6);
        EXPECT_NEAR(lp.cost, med.cost, 0.05 * (1.0 + lp.cost));
    }
}

TEST(PlacementLp, BoundsRespected) {
    PlacementProblem p;
    p.num_movable = 1;
    p.fixed_points = {{100.0, 100.0}};
    p.fixed_conns = {{0, 0, 1.0}};
    p.bounds = {0, 0, 10, 10};
    const auto r = solve_placement_lp(p);
    ASSERT_TRUE(r.ok);
    EXPECT_LE(r.positions[0].x, 10.0 + 1e-7);
    EXPECT_LE(r.positions[0].y, 10.0 + 1e-7);
}

TEST(PlacementLp, ValidationErrors) {
    PlacementProblem p;
    p.num_movable = 1;
    p.fixed_points = {{0, 0}};
    p.fixed_conns = {{0, 5, 1.0}};  // bad fixed index
    EXPECT_THROW(solve_placement_lp(p), std::out_of_range);
    p.fixed_conns = {{0, 0, -1.0}};  // negative weight
    EXPECT_THROW(solve_placement_lp(p), std::invalid_argument);
    p.fixed_conns.clear();
    p.movable_conns = {{0, 3, 1.0}};  // bad movable index
    EXPECT_THROW(solve_placement_median(p), std::out_of_range);
}

TEST(PlacementLp, ZeroWeightConnectionsAllowed) {
    PlacementProblem p;
    p.num_movable = 1;
    p.fixed_points = {{2, 2}};
    p.fixed_conns = {{0, 0, 0.0}};
    const auto r = solve_placement_lp(p);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.cost, 0.0, 1e-9);
}

TEST(PlacementLp, CostFunctionMatchesManualSum) {
    PlacementProblem p;
    p.num_movable = 2;
    p.fixed_points = {{0, 0}};
    p.fixed_conns = {{0, 0, 2.0}};
    p.movable_conns = {{0, 1, 3.0}};
    const std::vector<Point> pos{{1, 1}, {2, 2}};
    // 2*(1+1) + 3*(1+1) = 10.
    EXPECT_DOUBLE_EQ(placement_cost(p, pos), 10.0);
}

}  // namespace
}  // namespace sunfloor
