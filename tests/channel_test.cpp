// Bounded MPSC/MPMC channel semantics: FIFO ordering (global, and per
// producer under contention), the hard capacity bound (try_send Full,
// send blocking until a receiver makes room), and the shutdown contract
// (close wakes blocked senders and receivers; receivers drain accepted
// items before seeing Closed). Runs under TSan in CI — the threaded
// cases double as data-race probes on the channel's lock discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "sunfloor/util/channel.h"

namespace sunfloor {
namespace {

TEST(Channel, FifoWithinCapacity) {
    Channel<int> ch(8);
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(ch.send(i));
    EXPECT_EQ(ch.size(), 8u);
    int v = -1;
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(ch.recv(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CapacityZeroClampsToOne) {
    Channel<int> ch(0);
    EXPECT_EQ(ch.capacity(), 1u);
    EXPECT_EQ(ch.try_send(1), TrySend::Ok);
    EXPECT_EQ(ch.try_send(2), TrySend::Full);
}

TEST(Channel, TrySendFullAndTryRecvEmptyAreDistinctFromClosed) {
    Channel<int> ch(2);
    EXPECT_EQ(ch.try_send(1), TrySend::Ok);
    EXPECT_EQ(ch.try_send(2), TrySend::Ok);
    EXPECT_EQ(ch.try_send(3), TrySend::Full);  // back-pressure, not closed
    int v = -1;
    EXPECT_TRUE(ch.recv(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ch.recv(v));
    EXPECT_EQ(v, 2);
    EXPECT_EQ(ch.try_recv(v), TryRecv::Empty);
    EXPECT_EQ(v, 2);  // Empty leaves `out` untouched
    ch.close();
    EXPECT_EQ(ch.try_send(4), TrySend::Closed);
    EXPECT_EQ(ch.try_recv(v), TryRecv::Closed);
}

TEST(Channel, SendBlocksUntilReceiverMakesRoom) {
    Channel<int> ch(1);
    EXPECT_TRUE(ch.send(0));
    std::atomic<bool> second_sent{false};
    std::thread sender([&] {
        EXPECT_TRUE(ch.send(1));  // blocks: channel is full
        second_sent.store(true);
    });
    // The sender cannot complete before a recv frees the slot. (A sleep
    // can only produce false passes here, never flaky failures.)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_sent.load());
    int v = -1;
    EXPECT_TRUE(ch.recv(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ch.recv(v));
    EXPECT_EQ(v, 1);
    sender.join();
    EXPECT_TRUE(second_sent.load());
}

TEST(Channel, CloseWakesBlockedSender) {
    Channel<int> ch(1);
    EXPECT_TRUE(ch.send(0));
    std::thread sender([&] {
        EXPECT_FALSE(ch.send(1));  // blocked on full, then closed
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    sender.join();
    // The item accepted before the close is still drainable.
    int v = -1;
    EXPECT_EQ(ch.try_recv(v), TryRecv::Ok);
    EXPECT_EQ(v, 0);
    EXPECT_EQ(ch.try_recv(v), TryRecv::Closed);
}

TEST(Channel, CloseWakesBlockedReceiver) {
    Channel<int> ch(1);
    std::thread receiver([&] {
        int v = -1;
        EXPECT_FALSE(ch.recv(v));  // blocked on empty, then closed
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    receiver.join();
}

TEST(Channel, ReceiversDrainAcceptedItemsAfterClose) {
    Channel<int> ch(4);
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ch.send(i));
    ch.close();
    EXPECT_FALSE(ch.send(99));  // nothing accepted after close
    int v = -1;
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(ch.recv(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ch.recv(v));  // closed and drained
}

TEST(Channel, PerProducerOrderSurvivesContention) {
    // 4 producers x 200 items over a capacity-3 channel: every item
    // arrives exactly once and each producer's sequence stays in order
    // even though the global interleaving is arbitrary.
    constexpr int kProducers = 4;
    constexpr int kItems = 200;
    Channel<std::pair<int, int>> ch(3);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&ch, p] {
            for (int i = 0; i < kItems; ++i)
                ASSERT_TRUE(ch.send({p, i}));
        });
    std::vector<int> next_seq(kProducers, 0);
    std::pair<int, int> item;
    for (int n = 0; n < kProducers * kItems; ++n) {
        ASSERT_TRUE(ch.recv(item));
        ASSERT_GE(item.first, 0);
        ASSERT_LT(item.first, kProducers);
        EXPECT_EQ(item.second, next_seq[item.first]++);
    }
    for (std::thread& t : producers) t.join();
    for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kItems);
}

TEST(Channel, MultiConsumerShutdownDeliversEverythingExactlyOnce) {
    // The server shape: N producers, M consumers, close() as the only
    // shutdown signal. Every sent item is received exactly once and all
    // consumers exit after the drain.
    constexpr int kProducers = 3;
    constexpr int kConsumers = 4;
    constexpr int kItems = 150;
    Channel<int> ch(5);
    std::atomic<int> received{0};
    std::atomic<long long> sum{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            int v = -1;
            while (ch.recv(v)) {
                received.fetch_add(1);
                sum.fetch_add(v);
            }
        });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&ch, p] {
            for (int i = 0; i < kItems; ++i)
                ASSERT_TRUE(ch.send(p * kItems + i));
        });
    for (std::thread& t : producers) t.join();
    ch.close();
    for (std::thread& t : consumers) t.join();
    constexpr int kTotal = kProducers * kItems;
    EXPECT_EQ(received.load(), kTotal);
    EXPECT_EQ(sum.load(),
              static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace sunfloor
