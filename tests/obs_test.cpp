// Observability layer units: metrics registry semantics (delegation,
// histogram bucketing, reset, JSON schema), the span tracer (balanced
// begin/end pairs, per-thread buffers, disabled-path no-ops) and the
// validate_json checker the other obs tests lean on.
#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sunfloor/obs/metrics.h"
#include "sunfloor/obs/trace.h"

namespace sunfloor::obs {
namespace {

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulatesAndDelegatesToParent) {
    Registry parent;
    Registry child(&parent);
    Counter& c = child.counter("x.events");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    // One add updated both the session-local and the parent instrument.
    EXPECT_EQ(parent.counter("x.events").value(), 42);
    // Find-or-register hands back the same instrument.
    EXPECT_EQ(&child.counter("x.events"), &c);
}

TEST(Metrics, GaugeAddDelegatesButSetStaysLocal) {
    Registry parent;
    Registry child(&parent);
    Gauge& g = child.gauge("x.ms");
    g.add(1.5);
    g.add(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    EXPECT_DOUBLE_EQ(parent.gauge("x.ms").value(), 4.0);
    g.set(99.0);  // "last value" is meaningless process-wide
    EXPECT_DOUBLE_EQ(g.value(), 99.0);
    EXPECT_DOUBLE_EQ(parent.gauge("x.ms").value(), 4.0);
}

TEST(Metrics, HistogramBucketsByInclusiveUpperBoundWithOverflow) {
    Registry reg;
    Histogram& h = reg.histogram("x.h", {1.0, 4.0, 8.0});
    for (double v : {0.0, 1.0, 1.5, 4.0, 9.0, 100.0}) h.observe(v);
    // Inclusive upper bounds: 1.0 lands in the first bucket, 4.0 in the
    // second; 9.0 and 100.0 overflow.
    const std::vector<long long> want{2, 2, 0, 2};
    EXPECT_EQ(h.bucket_counts(), want);
    EXPECT_EQ(h.count(), 6);
    EXPECT_DOUBLE_EQ(h.sum(), 115.5);
}

TEST(Metrics, HistogramDelegatesObservationsToParent) {
    Registry parent;
    Registry child(&parent);
    child.histogram("x.h", {1.0, 2.0}).observe(1.5);
    Histogram& ph = parent.histogram("x.h", {1.0, 2.0});
    const std::vector<long long> want{0, 1, 0};
    EXPECT_EQ(ph.bucket_counts(), want);
}

TEST(Metrics, HistogramRejectsBadBounds) {
    Registry reg;
    EXPECT_THROW(reg.histogram("a", {}), std::logic_error);
    EXPECT_THROW(reg.histogram("b", {1.0, 1.0}), std::logic_error);
    EXPECT_THROW(reg.histogram("c", {2.0, 1.0}), std::logic_error);
}

TEST(Metrics, HistogramReRegistrationWithDifferentBoundsThrows) {
    Registry reg;
    reg.histogram("x.h", {1.0, 2.0});
    EXPECT_NO_THROW(reg.histogram("x.h", {1.0, 2.0}));
    EXPECT_THROW(reg.histogram("x.h", {1.0, 3.0}), std::logic_error);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrationsAndParentTotals) {
    Registry parent;
    Registry child(&parent);
    Counter& c = child.counter("x.n");
    Histogram& h = child.histogram("x.h", {1.0});
    c.add(7);
    h.observe(0.5);
    child.reset();
    // Handles stay valid and zeroed; the parent's totals survive (reset
    // is a per-session operation).
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_EQ(parent.counter("x.n").value(), 7);
    c.add(1);
    EXPECT_EQ(parent.counter("x.n").value(), 8);
}

TEST(Metrics, JsonSnapshotHasStableSchemaAndSortedNames) {
    Registry reg;
    reg.counter("b.second").add(2);
    reg.counter("a.first").add(1);
    reg.gauge("g.ms").add(1.25);
    reg.histogram("h.occ", {1.0, 2.0}).observe(1.5);
    const std::string json = reg.to_json();

    std::string err;
    EXPECT_TRUE(validate_json(json, &err)) << err;
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"b.second\": 2"), std::string::npos);
    EXPECT_LT(json.find("\"a.first\""), json.find("\"b.second\""));
    EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
    EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos);
}

TEST(Metrics, ConcurrentAddsThroughDelegationAreLossless) {
    Registry parent;
    Registry child(&parent);
    Counter& c = child.counter("x.n");
    Gauge& g = child.gauge("x.ms");
    constexpr int kThreads = 4;
    constexpr int kAdds = 5000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i) {
                c.add();
                g.add(1.0);
            }
        });
    for (auto& w : workers) w.join();
    EXPECT_EQ(c.value(), kThreads * kAdds);
    EXPECT_EQ(parent.counter("x.n").value(), kThreads * kAdds);
    EXPECT_DOUBLE_EQ(g.value(), kThreads * kAdds);
    EXPECT_DOUBLE_EQ(parent.gauge("x.ms").value(), kThreads * kAdds);
}

// -------------------------------------------------------------- tracer

/// One trace event as written by stop_tracing (one object per line).
struct ParsedEvent {
    std::string name;
    std::string phase;
    int tid = -1;
};

std::vector<ParsedEvent> parse_events(const std::string& trace) {
    static const std::regex re(
        "\\{\"name\": \"([^\"]+)\", \"cat\": \"[^\"]+\", \"ph\": "
        "\"([BE])\", \"ts\": [0-9.]+, \"pid\": 1, \"tid\": ([0-9]+)");
    std::vector<ParsedEvent> events;
    for (auto it = std::sregex_iterator(trace.begin(), trace.end(), re);
         it != std::sregex_iterator(); ++it)
        events.push_back({(*it)[1], (*it)[2], std::stoi((*it)[3])});
    return events;
}

/// Balanced per-(thread, name): every begin has a later end.
void expect_balanced(const std::vector<ParsedEvent>& events) {
    std::map<std::pair<int, std::string>, int> open;
    for (const auto& ev : events) {
        int& depth = open[{ev.tid, ev.name}];
        if (ev.phase == "B") {
            ++depth;
        } else {
            --depth;
            EXPECT_GE(depth, 0) << "E before B for " << ev.name;
        }
    }
    for (const auto& [key, depth] : open)
        EXPECT_EQ(depth, 0) << "unbalanced span " << key.second
                            << " on tid " << key.first;
}

TEST(Trace, DisabledTracingRecordsNothing) {
    ASSERT_FALSE(tracing_enabled());
    {
        ScopedSpan span("test.noop");
        ScopedSpan with_arg("test.noop", "i", 3);
    }
    EXPECT_EQ(trace_buffered_events(), 0u);
    std::ostringstream os;
    EXPECT_FALSE(stop_tracing(os));
    EXPECT_TRUE(os.str().empty());
}

TEST(Trace, SpansProduceBalancedValidJson) {
    ASSERT_TRUE(start_tracing());
    EXPECT_FALSE(start_tracing());  // already active
    {
        ScopedSpan outer("test.outer", "k", 7);
        ScopedSpan inner("test.inner");
    }
    EXPECT_EQ(trace_buffered_events(), 4u);

    std::ostringstream os;
    ASSERT_TRUE(stop_tracing(os));
    const std::string trace = os.str();

    std::string err;
    EXPECT_TRUE(validate_json(trace, &err)) << err;
    EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    // The span-name prefix before the first '.' is the category.
    EXPECT_NE(trace.find("\"name\": \"test.outer\", \"cat\": \"test\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"args\": {\"k\": 7}"), std::string::npos);

    const auto events = parse_events(trace);
    ASSERT_EQ(events.size(), 4u);
    expect_balanced(events);
    // LIFO nesting: outer begins first and ends last.
    EXPECT_EQ(events.front().name, "test.outer");
    EXPECT_EQ(events.back().name, "test.outer");
    EXPECT_EQ(trace_buffered_events(), 0u);
}

TEST(Trace, PerThreadBuffersGetDistinctTids) {
    ASSERT_TRUE(start_tracing());
    constexpr int kThreads = 4;
    constexpr int kSpans = 50;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([] {
            for (int i = 0; i < kSpans; ++i) {
                ScopedSpan span("test.work", "i", i);
            }
        });
    for (auto& w : workers) w.join();

    std::ostringstream os;
    ASSERT_TRUE(stop_tracing(os));
    const std::string trace = os.str();
    std::string err;
    EXPECT_TRUE(validate_json(trace, &err)) << err;

    const auto events = parse_events(trace);
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(2 * kThreads * kSpans));
    expect_balanced(events);
    std::map<int, int> per_tid;
    for (const auto& ev : events) ++per_tid[ev.tid];
    EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
    for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, 2 * kSpans) << tid;
}

TEST(Trace, DiscardDropsBufferedEvents) {
    ASSERT_TRUE(start_tracing());
    { ScopedSpan span("test.discarded"); }
    EXPECT_GT(trace_buffered_events(), 0u);
    discard_trace();
    EXPECT_FALSE(tracing_enabled());
    EXPECT_EQ(trace_buffered_events(), 0u);
    std::ostringstream os;
    EXPECT_FALSE(stop_tracing(os));
}

TEST(Trace, RestartAfterStopYieldsFreshTrace) {
    ASSERT_TRUE(start_tracing());
    { ScopedSpan span("test.first"); }
    std::ostringstream first;
    ASSERT_TRUE(stop_tracing(first));

    ASSERT_TRUE(start_tracing());
    { ScopedSpan span("test.second"); }
    std::ostringstream second;
    ASSERT_TRUE(stop_tracing(second));
    // The first trace's events must not leak into the second.
    EXPECT_EQ(second.str().find("test.first"), std::string::npos);
    EXPECT_NE(second.str().find("test.second"), std::string::npos);
}

// ------------------------------------------------------- validate_json

TEST(ValidateJson, AcceptsWellFormedDocuments) {
    for (const char* text :
         {"{}", "[]", "null", "true", "false", "42", "-0.5", "1e9",
          "\"str\"", "{\"a\": [1, 2.5, -3e-2], \"b\": {\"c\": null}}",
          "\"esc \\\" \\\\ \\n \\u00e9\"", "[[[[1]]]]"}) {
        std::string err;
        EXPECT_TRUE(validate_json(text, &err)) << text << ": " << err;
    }
}

TEST(ValidateJson, RejectsMalformedDocuments) {
    for (const char* text :
         {"", "{", "}", "{\"a\": }", "{\"a\" 1}", "[1, ]", "[1 2]",
          "{} extra", "nul", "+1", "-", "1.", "\"unterminated",
          "\"bad \\x escape\"", "\"ctrl \n char\"", "{'a': 1}",
          "{\"a\": 1,}"}) {
        std::string err;
        EXPECT_FALSE(validate_json(text, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(ValidateJson, RejectsExcessiveNesting) {
    std::string deep(300, '[');
    deep += std::string(300, ']');
    EXPECT_FALSE(validate_json(deep));
    std::string ok(200, '[');
    ok += std::string(200, ']');
    EXPECT_TRUE(validate_json(ok));
}

}  // namespace
}  // namespace sunfloor::obs
