// Tests for the optimized-mesh baseline (Section VIII-E).
#include <gtest/gtest.h>

#include "sunfloor/noc/deadlock.h"
#include "sunfloor/noc/mesh.h"
#include "sunfloor/spec/benchmarks.h"

namespace sunfloor {
namespace {

TEST(Mesh, RoutesAllFlowsOnD26) {
    const auto spec = make_d26_media();
    EvalParams params;
    Rng rng(1);
    MeshOptions opts;
    opts.moves_per_temp = 64;  // keep the test fast
    const auto mesh = build_mesh_baseline(spec, params, rng, opts);
    EXPECT_TRUE(mesh.ok);
    EXPECT_TRUE(mesh.topo.all_flows_routed());
    EXPECT_GT(mesh.grid_w, 0);
    EXPECT_GT(mesh.grid_h, 0);
}

TEST(Mesh, DimensionOrderedRoutingIsDeadlockFree) {
    for (const char* name : {"D_26_media", "D_35_bot", "D_38_tvopd"}) {
        const auto spec = make_benchmark(name);
        EvalParams params;
        Rng rng(2);
        MeshOptions opts;
        opts.moves_per_temp = 32;
        const auto mesh = build_mesh_baseline(spec, params, rng, opts);
        EXPECT_TRUE(is_routing_deadlock_free(mesh.topo)) << name;
        EXPECT_TRUE(is_message_dependent_deadlock_free(mesh.topo, spec.comm))
            << name;
        EXPECT_TRUE(classes_are_separated(mesh.topo, spec.comm)) << name;
    }
}

TEST(Mesh, UnusedLinksArePruned) {
    // A pipeline uses only neighbouring tiles; the pruned mesh must have
    // far fewer links than the full mesh (4 directed links per tile pair).
    const auto spec = make_d65_pipe();
    EvalParams params;
    Rng rng(3);
    MeshOptions opts;
    opts.moves_per_temp = 32;
    const auto mesh = build_mesh_baseline(spec, params, rng, opts);
    int s2s_links = 0;
    for (int l = 0; l < mesh.topo.num_links(); ++l) {
        const auto& lk = mesh.topo.link(l);
        if (lk.src.is_switch() && lk.dst.is_switch()) ++s2s_links;
        EXPECT_GT(lk.bw_mbps, 0.0);  // pruning: every link carries traffic
    }
    const int tiles = mesh.grid_w * mesh.grid_h * spec.cores.num_layers();
    EXPECT_LT(s2s_links, 4 * tiles);
}

TEST(Mesh, MeshLatencyIsHopCount) {
    // Mapping quality aside, every flow's zero-load latency equals the
    // number of switches on its path (links are tile-to-tile, short).
    const auto spec = make_d35_bot();
    EvalParams params;
    Rng rng(4);
    MeshOptions opts;
    opts.moves_per_temp = 32;
    const auto mesh = build_mesh_baseline(spec, params, rng, opts);
    const auto rep = evaluate_topology(mesh.topo, spec, params);
    EXPECT_GE(rep.avg_latency_cycles, 1.0);
    EXPECT_TRUE(rep.all_flows_routed);
}

TEST(Mesh, AnnealingImprovesMapping) {
    const auto spec = make_d36(4);
    EvalParams params;
    MeshOptions lazy;
    lazy.moves_per_temp = 1;
    lazy.cooling = 0.1;  // effectively no annealing
    MeshOptions eager;
    eager.moves_per_temp = 64;
    Rng r1(5);
    Rng r2(5);
    const auto a = build_mesh_baseline(spec, params, r1, lazy);
    const auto b = build_mesh_baseline(spec, params, r2, eager);
    EXPECT_LE(b.map_cost, a.map_cost + 1e-9);
}

TEST(Mesh, CustomBeatsMeshOnPower) {
    // The headline of Fig. 23: custom topologies use much less power than
    // the optimized mesh. Verified end-to-end in integration_test; here we
    // only check the mesh side produces a finite sane number.
    const auto spec = make_d26_media();
    EvalParams params;
    Rng rng(6);
    MeshOptions opts;
    opts.moves_per_temp = 32;
    const auto mesh = build_mesh_baseline(spec, params, rng, opts);
    const auto rep = evaluate_topology(mesh.topo, spec, params);
    EXPECT_GT(rep.power.noc_mw(), 0.0);
    EXPECT_LT(rep.power.noc_mw(), 5000.0);
}

}  // namespace
}  // namespace sunfloor
