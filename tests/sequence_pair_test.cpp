// Tests for the sequence-pair floorplan representation.
#include <gtest/gtest.h>

#include "sunfloor/floorplan/sequence_pair.h"
#include "sunfloor/util/rng.h"

namespace sunfloor {
namespace {

bool packing_is_legal(const Packing& p, const std::vector<BlockDim>& dims) {
    std::vector<Rect> rects;
    for (std::size_t i = 0; i < dims.size(); ++i)
        rects.push_back(p.block_rect(static_cast<int>(i), dims));
    return total_overlap(rects) < 1e-12;
}

TEST(SequencePair, IdentityPacksInARow) {
    SequencePair sp(3);
    const std::vector<BlockDim> dims{{1, 1}, {2, 1}, {1, 2}};
    const Packing p = sp.pack(dims);
    // Identity sequence pair: every earlier block is left of later ones.
    EXPECT_DOUBLE_EQ(p.positions[0].x, 0.0);
    EXPECT_DOUBLE_EQ(p.positions[1].x, 1.0);
    EXPECT_DOUBLE_EQ(p.positions[2].x, 3.0);
    EXPECT_DOUBLE_EQ(p.height, 2.0);
    EXPECT_TRUE(packing_is_legal(p, dims));
}

TEST(SequencePair, ReversedGammaPosStacksVertically) {
    // G+ = (2,1,0), G- = (0,1,2): every earlier G- block is below.
    SequencePair sp({2, 1, 0}, {0, 1, 2});
    const std::vector<BlockDim> dims{{1, 1}, {1, 1}, {1, 1}};
    const Packing p = sp.pack(dims);
    EXPECT_DOUBLE_EQ(p.width, 1.0);
    EXPECT_DOUBLE_EQ(p.height, 3.0);
    EXPECT_TRUE(packing_is_legal(p, dims));
}

TEST(SequencePair, ValidationRejectsBadPermutations) {
    EXPECT_THROW(SequencePair({0, 0}, {0, 1}), std::invalid_argument);
    EXPECT_THROW(SequencePair({0, 1}, {0}), std::invalid_argument);
    EXPECT_THROW(SequencePair({0, 2}, {0, 1}), std::invalid_argument);
}

TEST(SequencePair, FromPlacementReproducesRelativeOrder) {
    // Two blocks side by side and one above: derived sequence pair must
    // pack them without overlap and preserve left-of / above-of relations.
    const std::vector<Rect> rects{{0, 0, 2, 2}, {3, 0, 2, 2}, {0, 3, 2, 2}};
    const auto sp = SequencePair::from_placement(rects);
    std::vector<BlockDim> dims;
    for (const auto& r : rects) dims.push_back({r.w, r.h});
    const Packing p = sp.pack(dims);
    EXPECT_TRUE(packing_is_legal(p, dims));
    EXPECT_LT(p.positions[0].x, p.positions[1].x);   // 0 left of 1
    EXPECT_LT(p.positions[0].y, p.positions[2].y);   // 0 below 2
}

TEST(SequencePair, PackNeverOverlapsRandom) {
    Rng rng(17);
    for (int trial = 0; trial < 30; ++trial) {
        const int n = 2 + static_cast<int>(rng.next_below(10));
        std::vector<int> gp(n);
        std::vector<int> gn(n);
        for (int i = 0; i < n; ++i) gp[i] = gn[i] = i;
        rng.shuffle(gp);
        rng.shuffle(gn);
        SequencePair sp(gp, gn);
        std::vector<BlockDim> dims;
        for (int i = 0; i < n; ++i)
            dims.push_back(
                {0.5 + rng.next_double() * 2.0, 0.5 + rng.next_double() * 2.0});
        const Packing p = sp.pack(dims);
        EXPECT_TRUE(packing_is_legal(p, dims)) << "trial " << trial;
        // Bounding box consistent.
        double w = 0.0;
        double h = 0.0;
        for (int i = 0; i < n; ++i) {
            w = std::max(w, p.positions[i].x + dims[i].w);
            h = std::max(h, p.positions[i].y + dims[i].h);
        }
        EXPECT_DOUBLE_EQ(p.width, w);
        EXPECT_DOUBLE_EQ(p.height, h);
    }
}

TEST(SequencePair, MovesPreserveLegality) {
    Rng rng(23);
    SequencePair sp(6);
    const std::vector<BlockDim> dims{{1, 1}, {2, 1}, {1, 3},
                                     {2, 2}, {1, 1}, {3, 1}};
    for (int move = 0; move < 50; ++move) {
        const int kind = rng.next_int(0, 3);
        const int i = rng.next_int(0, 5);
        int j = rng.next_int(0, 4);
        if (j >= i) ++j;
        switch (kind) {
            case 0: sp.swap_pos(i, j); break;
            case 1: sp.swap_neg(i, j); break;
            case 2: sp.swap_both(i, j); break;
            default: sp.reinsert(i, rng.next_int(0, 5), rng.next_int(0, 5));
        }
        EXPECT_TRUE(packing_is_legal(sp.pack(dims), dims));
    }
}

TEST(SequencePair, AreaLowerBoundRespected) {
    Rng rng(29);
    std::vector<BlockDim> dims{{2, 1}, {1, 2}, {1, 1}, {2, 2}};
    double total = 0.0;
    for (const auto& d : dims) total += d.w * d.h;
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> gp{0, 1, 2, 3};
        std::vector<int> gn{0, 1, 2, 3};
        rng.shuffle(gp);
        rng.shuffle(gn);
        const Packing p = SequencePair(gp, gn).pack(dims);
        EXPECT_GE(p.area(), total - 1e-9);
    }
}

}  // namespace
}  // namespace sunfloor
