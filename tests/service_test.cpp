// Job-engine semantics, headlined by the service's acceptance property:
// a job's result CSV is byte-identical to the one-shot path
// (run_synthesis + design_points_table, or a fresh Explorer) no matter
// how many workers run, in which order jobs were submitted, or how warm
// the shared sessions are. Also covers typed admission control
// (queue-full / quota / shutting-down), the drain contract, the
// warm-session LRU bound, and failed-job reporting. Runs under TSan in
// CI — the multi-worker identity sweep doubles as a race probe on the
// engine's publish/read discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/explore/explorer.h"
#include "sunfloor/explore/export.h"
#include "sunfloor/io/report.h"
#include "sunfloor/obs/trace.h"
#include "sunfloor/pipeline/session.h"
#include "sunfloor/service/job_engine.h"
#include "sunfloor/service/protocol.h"
#include "sunfloor/spec/parser.h"
#include "sunfloor/specgen/specgen.h"

namespace sunfloor::service {
namespace {

// Small generated designs keep one job in the tens-of-milliseconds
// range; floorplan stays off in JobParams (not in the reference config
// mapping, which must mirror the request bit for bit).
DesignSpec small_spec(specgen::GenFamily family, int cores,
                      std::uint64_t seed) {
    specgen::GenParams gp;
    gp.family = family;
    gp.num_cores = cores;
    gp.num_layers = 2;
    return specgen::generate(gp, seed);
}

std::string spec_text_of(const DesignSpec& spec) {
    std::ostringstream os;
    write_design(os, spec);
    return os.str();
}

JobRequest make_request(const DesignSpec& spec, JobKind kind,
                        JobParams params,
                        const std::string& client = "test") {
    JobRequest req;
    req.kind = kind;
    req.client = client;
    req.spec = spec;
    req.spec_text = spec_text_of(spec);
    req.params = std::move(params);
    return req;
}

JobParams fast_params() {
    JobParams p;
    p.floorplan = false;
    return p;
}

// The one-shot reference for a synth request: the same config mapping
// execute_synth() applies, run through the stateless entry point.
std::string reference_synth_csv(const DesignSpec& spec,
                                const JobParams& p) {
    SynthesisConfig cfg;
    cfg.eval.freq_hz =
        (p.freq_mhz.empty() ? 400.0 : p.freq_mhz.front()) * 1e6;
    if (!p.max_tsvs.empty()) cfg.max_ill = p.max_tsvs.front();
    if (!p.routings.empty()) cfg.routing = p.routings.front();
    cfg.alpha = p.alpha;
    cfg.seed = static_cast<std::uint64_t>(p.seed);
    cfg.run_floorplan = p.floorplan;
    const SynthesisPhase phase =
        p.phases.empty() ? SynthesisPhase::Auto : p.phases.front();
    const SynthesisResult res = run_synthesis(spec, cfg, phase);
    std::ostringstream os;
    design_points_table(res.points).write_csv(os);
    return os.str();
}

// The one-shot reference for an explore request: a fresh Explorer on a
// cold session, exactly as the CLI's --explore path builds one.
std::string reference_explore_csv(const DesignSpec& spec,
                                  const JobParams& p) {
    SynthesisConfig cfg;
    cfg.alpha = p.alpha;
    cfg.run_floorplan = p.floorplan;
    ParamGrid grid;
    if (!p.freq_mhz.empty()) {
        std::vector<double> hz;
        for (const double mhz : p.freq_mhz) hz.push_back(mhz * 1e6);
        grid.set_axis(ParamAxis::frequencies_hz(hz));
    }
    if (!p.max_tsvs.empty())
        grid.set_axis(ParamAxis::max_tsvs(p.max_tsvs));
    if (!p.thetas.empty()) grid.set_axis(ParamAxis::thetas(p.thetas));
    ExploreOptions opts;
    opts.num_threads = 1;
    opts.base_seed = static_cast<std::uint64_t>(p.seed);
    const Explorer explorer(
        std::make_shared<pipeline::SynthesisSession>(spec), cfg, opts);
    const ExploreResult res = explorer.run(grid);
    std::ostringstream os;
    explore_table(res).write_csv(os);
    return os.str();
}

JobResult run_to_result(JobEngine& engine, const JobRequest& req) {
    const Submission sub = engine.submit(req);
    EXPECT_TRUE(sub.accepted) << sub.error;
    JobStatus st;
    EXPECT_TRUE(engine.wait(sub.id, st));
    JobResult out;
    EXPECT_TRUE(engine.result(sub.id, out));
    return out;
}

// ------------------------------------------------- byte-identity property

TEST(ServiceEngine, SynthResultsByteIdenticalAcrossWorkersOrderWarmth) {
    const DesignSpec pipe =
        small_spec(specgen::GenFamily::Pipeline, 8, 1);
    const DesignSpec hub =
        small_spec(specgen::GenFamily::HubAndSpoke, 8, 2);

    // A mixed workload: two specs x two frequencies, plus a repeat that
    // must hit a warm session, plus a phase1-pinned run.
    std::vector<JobRequest> jobs;
    for (const DesignSpec* spec : {&pipe, &hub}) {
        for (const double mhz : {400.0, 500.0}) {
            JobParams p = fast_params();
            p.freq_mhz = {mhz};
            jobs.push_back(make_request(*spec, JobKind::Synth, p));
        }
    }
    {
        JobParams p = fast_params();
        p.freq_mhz = {400.0};
        jobs.push_back(make_request(pipe, JobKind::Synth, p));  // repeat
        p.phases = {SynthesisPhase::Phase1};
        jobs.push_back(make_request(pipe, JobKind::Synth, p));
    }

    std::vector<std::string> want;
    want.reserve(jobs.size());
    for (const JobRequest& j : jobs)
        want.push_back(reference_synth_csv(j.spec, j.params));
    EXPECT_FALSE(want[0].empty());
    EXPECT_EQ(want[0], want[4]);  // repeat shares the reference

    for (const int workers : {1, 2, 4}) {
        EngineOptions opts;
        opts.workers = workers;
        opts.max_sessions = 2;
        JobEngine engine(opts);
        // A different submission order per worker count: reversed for
        // even counts.
        std::vector<std::size_t> order(jobs.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        if (workers % 2 == 0)
            std::reverse(order.begin(), order.end());
        std::vector<std::uint64_t> ids(jobs.size(), 0);
        for (const std::size_t i : order) {
            const Submission sub = engine.submit(jobs[i]);
            ASSERT_TRUE(sub.accepted) << sub.error;
            ids[i] = sub.id;
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            JobStatus st;
            ASSERT_TRUE(engine.wait(ids[i], st));
            JobResult r;
            ASSERT_TRUE(engine.result(ids[i], r));
            ASSERT_FALSE(r.failed) << r.error;
            EXPECT_EQ(r.csv, want[i])
                << "workers=" << workers << " job=" << i;
            EXPECT_GT(r.num_points, 0);
        }
        // Warm repetition inside one engine: same bytes again.
        const JobResult again = run_to_result(engine, jobs[0]);
        ASSERT_FALSE(again.failed) << again.error;
        EXPECT_EQ(again.csv, want[0]) << "workers=" << workers;
    }
}

TEST(ServiceEngine, ExploreResultMatchesFreshExplorerRun) {
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 8, 3);
    JobParams p = fast_params();
    p.freq_mhz = {400.0, 600.0};
    p.max_tsvs = {10, 25};
    const std::string want = reference_explore_csv(spec, p);
    EXPECT_FALSE(want.empty());

    EngineOptions opts;
    opts.workers = 2;
    JobEngine engine(opts);
    const JobRequest req = make_request(spec, JobKind::Explore, p);
    // Twice: the second run rides a warm session but a fresh per-point
    // cache, so the exported cache_hit column stays identical.
    for (int round = 0; round < 2; ++round) {
        const JobResult r = run_to_result(engine, req);
        ASSERT_FALSE(r.failed) << r.error;
        EXPECT_EQ(r.csv, want) << "round " << round;
        // stats.total_designs counts evaluated designs, several per
        // grid point — 4 grid cells produce at least 4.
        EXPECT_GE(r.num_points, 4);
    }
}

// ------------------------------------------------------ admission control

TEST(ServiceEngine, QueueFullRejectionIsTypedAndNothingIsLost) {
    EngineOptions opts;
    opts.workers = 1;
    opts.queue_capacity = 1;
    opts.per_client_quota = 1000;
    JobEngine engine(opts);
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 8, 4);

    // Submissions are instant next to a synthesis run, so a burst far
    // beyond capacity must see back-pressure. Every request is distinct
    // (the frequency varies) — identical ones would coalesce instead of
    // queueing, which is tested separately below.
    int accepted = 0, queue_full = 0;
    for (int i = 0; i < 200; ++i) {
        JobParams p = fast_params();
        p.freq_mhz = {400.0 + i};
        const Submission sub =
            engine.submit(make_request(spec, JobKind::Synth, p));
        if (sub.accepted) {
            ++accepted;
        } else {
            ASSERT_EQ(sub.reason, RejectReason::QueueFull) << sub.error;
            EXPECT_NE(sub.error.find("queue is full"),
                      std::string::npos);
            ++queue_full;
        }
    }
    EXPECT_GE(accepted, 1);
    EXPECT_GE(queue_full, 1);
    engine.begin_drain();
    engine.drain();
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.submitted, accepted);
    EXPECT_EQ(st.completed, accepted);  // accepted jobs are never lost
    EXPECT_EQ(st.rejected, queue_full);
    EXPECT_EQ(st.queued, 0);
    EXPECT_EQ(st.running, 0);
}

TEST(ServiceEngine, PerClientQuotaRejectsTheGreedyClientOnly) {
    EngineOptions opts;
    opts.workers = 1;
    opts.queue_capacity = 100;
    opts.per_client_quota = 2;
    JobEngine engine(opts);
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 8, 5);

    int accepted = 0, quota = 0;
    for (int i = 0; i < 10; ++i) {
        const Submission sub = engine.submit(
            make_request(spec, JobKind::Synth, fast_params(), "greedy"));
        if (sub.accepted) {
            ++accepted;
        } else {
            ASSERT_EQ(sub.reason, RejectReason::QuotaExceeded)
                << sub.error;
            EXPECT_NE(sub.error.find("\"greedy\""), std::string::npos);
            ++quota;
        }
    }
    EXPECT_GE(accepted, 2);
    EXPECT_GE(quota, 1);
    // Another client is not affected by the greedy one's quota.
    const Submission other = engine.submit(
        make_request(spec, JobKind::Synth, fast_params(), "polite"));
    EXPECT_TRUE(other.accepted) << other.error;
    engine.begin_drain();
    engine.drain();
    // Quota released on completion: the greedy client may submit again.
    // (Draining rejects it for the *other* typed reason.)
    const Submission after = engine.submit(
        make_request(spec, JobKind::Synth, fast_params(), "greedy"));
    EXPECT_FALSE(after.accepted);
    EXPECT_EQ(after.reason, RejectReason::ShuttingDown);
}

TEST(ServiceEngine, DrainRejectsNewSubmissionsAndFinishesAccepted) {
    EngineOptions opts;
    opts.workers = 2;
    JobEngine engine(opts);
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 8, 6);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        JobParams p = fast_params();
        p.freq_mhz = {400.0 + 50.0 * i};
        const Submission sub =
            engine.submit(make_request(spec, JobKind::Synth, p));
        ASSERT_TRUE(sub.accepted) << sub.error;
        ids.push_back(sub.id);
    }
    engine.begin_drain();
    const Submission rejected =
        engine.submit(make_request(spec, JobKind::Synth, fast_params()));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.reason, RejectReason::ShuttingDown);
    EXPECT_EQ(rejected.error, "server is shutting down");
    engine.drain();
    for (const std::uint64_t id : ids) {
        JobStatus st;
        ASSERT_TRUE(engine.status(id, st));
        EXPECT_EQ(st.state, JobState::Done);
        EXPECT_GE(st.wait_ms, 0.0);
        EXPECT_GT(st.run_ms, 0.0);
    }
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.submitted, 4);
    EXPECT_EQ(st.completed, 4);
    EXPECT_EQ(st.failed, 0);
    EXPECT_EQ(st.rejected, 1);
    EXPECT_EQ(st.workers, 2);
}

// ------------------------------------------------------- lookup contract

TEST(ServiceEngine, UnknownIdsAreReportedNotInvented) {
    JobEngine engine(EngineOptions{.workers = 1});
    JobStatus st;
    JobResult r;
    EXPECT_FALSE(engine.status(999, st));
    EXPECT_FALSE(engine.wait(999, st, 10));
    EXPECT_FALSE(engine.result(999, r));
}

TEST(ServiceEngine, WarmSessionCacheIsLruBounded) {
    EngineOptions opts;
    opts.workers = 1;
    opts.max_sessions = 2;
    JobEngine engine(opts);
    for (std::uint64_t seed = 10; seed < 14; ++seed) {
        const DesignSpec spec =
            small_spec(specgen::GenFamily::Pipeline, 6, seed);
        const JobResult r = run_to_result(
            engine, make_request(spec, JobKind::Synth, fast_params()));
        ASSERT_FALSE(r.failed) << r.error;
    }
    EXPECT_LE(engine.stats().sessions, 2);
    EXPECT_GE(engine.stats().sessions, 1);
}

// ----------------------------------------------------------- coalescing

// K concurrent byte-identical submits from K different clients run ONE
// computation: one service.job span in the trace, every submission its
// own id, and all K results byte-identical to the one-shot reference.
TEST(ServiceEngine, ConcurrentIdenticalSubmitsCoalesceToOneComputation) {
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 8, 7);
    JobParams p = fast_params();
    p.freq_mhz = {400.0};
    const std::string want = reference_synth_csv(spec, p);
    ASSERT_FALSE(want.empty());

    EngineOptions opts;
    opts.workers = 1;
    // Two queue slots (blocker + primary): the 7 duplicates can only be
    // accepted by attaching (attaches consume no queue capacity).
    opts.queue_capacity = 2;
    JobEngine engine(opts);

    ASSERT_TRUE(obs::start_tracing());
    // Park the only worker on a slow distinct job so the primary stays
    // queued — and therefore coalescable — for the whole submit burst,
    // however unfairly the submitter threads get scheduled.
    const DesignSpec blocker_spec =
        small_spec(specgen::GenFamily::Pipeline, 20, 70);
    JobParams blocker_params;  // floorplan on: tens of milliseconds
    const Submission blocker = engine.submit(
        make_request(blocker_spec, JobKind::Synth, blocker_params));
    ASSERT_TRUE(blocker.accepted) << blocker.error;

    constexpr int kClients = 8;
    std::vector<std::uint64_t> ids(kClients, 0);
    {
        std::atomic<bool> go{false};
        std::vector<std::thread> submitters;
        submitters.reserve(kClients);
        for (int i = 0; i < kClients; ++i)
            submitters.emplace_back([&, i] {
                while (!go.load()) std::this_thread::yield();
                const Submission sub = engine.submit(make_request(
                    spec, JobKind::Synth, p,
                    "client" + std::to_string(i)));
                ASSERT_TRUE(sub.accepted) << sub.error;
                ids[static_cast<std::size_t>(i)] = sub.id;
            });
        go.store(true);
        for (std::thread& t : submitters) t.join();
    }
    for (const std::uint64_t id : ids) {
        JobStatus st;
        ASSERT_TRUE(engine.wait(id, st));
        EXPECT_EQ(st.state, JobState::Done);
        JobResult r;
        ASSERT_TRUE(engine.result(id, r));
        ASSERT_FALSE(r.failed) << r.error;
        EXPECT_EQ(r.csv, want);  // every client gets the same bytes
    }
    engine.begin_drain();
    engine.drain();
    std::ostringstream trace;
    ASSERT_TRUE(obs::stop_tracing(trace));

    // One span = one "B" plus one "E" event carrying the name. Exactly
    // two jobs computed: the blocker and the one coalesced primary.
    const std::string json = trace.str();
    std::size_t events = 0;
    for (std::size_t at = json.find("\"service.job\"");
         at != std::string::npos;
         at = json.find("\"service.job\"", at + 1))
        ++events;
    EXPECT_EQ(events, 4u);

    const EngineStats st = engine.stats();
    EXPECT_EQ(st.submitted, kClients + 1);
    EXPECT_EQ(st.coalesced, kClients - 1);
    EXPECT_EQ(st.completed, kClients + 1);  // followers complete too
    EXPECT_EQ(st.failed, 0);
}

TEST(ServiceEngine, ThrowingJobReportsFailedWithTheException) {
    JobEngine engine(EngineOptions{.workers = 1});
    const DesignSpec spec =
        small_spec(specgen::GenFamily::Pipeline, 6, 20);
    // Bypasses the protocol's theta > 0 validation on purpose: the grid
    // itself throws, and the engine must turn that into a Failed job
    // instead of losing the job or the worker.
    JobParams p = fast_params();
    p.thetas = {-2.0};
    const Submission sub =
        engine.submit(make_request(spec, JobKind::Explore, p));
    ASSERT_TRUE(sub.accepted) << sub.error;
    JobStatus st;
    ASSERT_TRUE(engine.wait(sub.id, st));
    EXPECT_EQ(st.state, JobState::Failed);
    JobResult r;
    ASSERT_TRUE(engine.result(sub.id, r));
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.error.find("theta"), std::string::npos) << r.error;
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(stats.completed, 0);
    // The worker survived: the next job still runs.
    const JobResult ok = run_to_result(
        engine, make_request(spec, JobKind::Synth, fast_params()));
    EXPECT_FALSE(ok.failed) << ok.error;
}

}  // namespace
}  // namespace sunfloor::service
