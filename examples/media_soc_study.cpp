// The Section VIII-A case study as a runnable example: synthesize the
// D_26_media multimedia SoC in 3-D, compare with the 2-D implementation,
// and export the best topology and floorplans.
#include <iostream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/floorplan/annealer.h"
#include "sunfloor/io/dot.h"
#include "sunfloor/io/floorplan_dump.h"
#include "sunfloor/io/report.h"
#include "sunfloor/spec/benchmarks.h"

using namespace sunfloor;

namespace {

DesignSpec prepare(DesignSpec spec) {
    AnnealOptions fopts;
    fopts.wirelength_weight = 5e-4;
    Rng rng(42);
    floorplan_design_layers(spec.cores, spec.comm, fopts, rng);
    return spec;
}

}  // namespace

int main() {
    const DesignSpec spec3d = prepare(make_d26_media());
    const DesignSpec spec2d = prepare(to_2d(spec3d));

    SynthesisConfig cfg;
    cfg.eval.freq_hz = 400e6;
    cfg.max_ill = 25;

    std::cout << "=== D_26_media, 3-D (3 layers) ===\n";
    const auto r3 = Synthesizer(spec3d, cfg).run(SynthesisPhase::Phase1);
    write_synthesis_report(std::cout, r3);

    std::cout << "\n=== D_26_media, 2-D ===\n";
    const auto r2 = Synthesizer(spec2d, cfg).run(SynthesisPhase::Phase1);
    write_synthesis_report(std::cout, r2);

    const int b3 = r3.best_power_index();
    const int b2 = r2.best_power_index();
    if (b3 < 0 || b2 < 0) {
        std::cerr << "no valid design point\n";
        return 1;
    }
    const auto& p3 = r3.points[static_cast<std::size_t>(b3)];
    const auto& p2 = r2.points[static_cast<std::size_t>(b2)];
    std::cout << "\n3-D saves "
              << 100.0 * (1.0 - p3.report.power.noc_mw() /
                                    p2.report.power.noc_mw())
              << "% NoC power and "
              << 100.0 * (1.0 - p3.report.avg_latency_cycles /
                                    p2.report.avg_latency_cycles)
              << "% latency vs 2-D (paper: 24% / similar trend).\n";

    save_topology_dot("media_3d_topology.dot", p3.topo, spec3d);
    for (int ly = 0; ly < spec3d.cores.num_layers(); ++ly)
        save_layer_svg("media_3d_layer" + std::to_string(ly) + ".svg", p3.topo,
                       spec3d, ly);
    std::cout << "wrote media_3d_topology.dot and media_3d_layer*.svg\n";
    return 0;
}
