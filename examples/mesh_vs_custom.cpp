// Compare a synthesized custom topology against the optimized mesh
// baseline on a benchmark of choice (default D_35_bot) — the Fig. 23
// experiment as an interactive example.
//
//   ./mesh_vs_custom [benchmark_name]
#include <iostream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/floorplan/annealer.h"
#include "sunfloor/io/dot.h"
#include "sunfloor/noc/mesh.h"
#include "sunfloor/spec/benchmarks.h"

using namespace sunfloor;

int main(int argc, char** argv) {
    const std::string name = argc > 1 ? argv[1] : "D_35_bot";
    DesignSpec spec;
    try {
        spec = make_benchmark(name);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\navailable:";
        for (const auto& n : benchmark_names()) std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }
    AnnealOptions fopts;
    fopts.wirelength_weight = 5e-4;
    Rng frng(42);
    floorplan_design_layers(spec.cores, spec.comm, fopts, frng);

    SynthesisConfig cfg;
    const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
    const int bp = res.best_power_index();
    if (bp < 0) {
        std::cerr << "custom synthesis found no valid point\n";
        return 1;
    }
    const auto& custom = res.points[static_cast<std::size_t>(bp)];

    Rng rng(1);
    const auto mesh = build_mesh_baseline(spec, cfg.eval, rng);
    const auto mesh_rep = evaluate_topology(mesh.topo, spec, cfg.eval);

    std::cout << name << " (" << spec.cores.num_cores() << " cores, "
              << spec.cores.num_layers() << " layers)\n\n";
    auto line = [](const char* tag, double power, double lat, int switches,
                   int links) {
        std::printf("%-8s %8.1f mW  %5.2f cycles  %3d switches  %3d links\n",
                    tag, power, lat, switches, links);
    };
    int mesh_switch_count = 0;
    for (int s = 0; s < mesh.topo.num_switches(); ++s)
        if (mesh.topo.switch_in_degree(s) + mesh.topo.switch_out_degree(s) > 0)
            ++mesh_switch_count;
    line("custom", custom.report.power.noc_mw(),
         custom.report.avg_latency_cycles, custom.topo.num_switches(),
         custom.topo.num_links());
    line("mesh", mesh_rep.power.noc_mw(), mesh_rep.avg_latency_cycles,
         mesh_switch_count, mesh.topo.num_links());
    std::printf("\ncustom saves %.1f%% power and %.1f%% latency\n",
                100.0 * (1.0 - custom.report.power.noc_mw() /
                                   mesh_rep.power.noc_mw()),
                100.0 * (1.0 - custom.report.avg_latency_cycles /
                                   mesh_rep.avg_latency_cycles));

    save_topology_dot(name + "_custom.dot", custom.topo, spec);
    save_topology_dot(name + "_mesh.dot", mesh.topo, spec);
    std::cout << "wrote " << name << "_custom.dot and " << name
              << "_mesh.dot\n";
    return 0;
}
