// Quickstart: synthesize a custom 3-D NoC for a small hand-written design.
//
// Builds an 8-core, 2-layer SoC spec in code, runs SunFloor 3D, prints the
// design-point table and exports the best topology as DOT and SVG.
#include <iostream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/io/dot.h"
#include "sunfloor/io/floorplan_dump.h"
#include "sunfloor/io/report.h"
#include "sunfloor/spec/benchmarks.h"

using namespace sunfloor;

int main() {
    // --- describe the SoC ---------------------------------------------------
    DesignSpec spec;
    spec.name = "quickstart";
    auto add_core = [&](const char* name, double w, double h, int layer) {
        Core c;
        c.name = name;
        c.width = w;
        c.height = h;
        c.layer = layer;
        spec.cores.add_core(c);
    };
    add_core("cpu", 1.2, 1.2, 0);
    add_core("mem0", 1.0, 1.0, 0);
    add_core("mem1", 1.0, 1.0, 0);
    add_core("dsp", 1.2, 1.1, 1);
    add_core("mem2", 1.0, 1.0, 1);
    add_core("acc", 1.0, 0.9, 1);
    add_core("io", 0.6, 0.6, 0);
    add_core("disp", 0.9, 0.8, 1);
    assign_positions_rowpack(spec.cores);

    auto add_flow = [&](const char* s, const char* d, double bw, double lat,
                        FlowType t) {
        Flow f;
        f.src = spec.cores.find(s);
        f.dst = spec.cores.find(d);
        f.bw_mbps = bw;
        f.max_latency_cycles = lat;
        f.type = t;
        spec.comm.add_flow(f);
    };
    add_flow("cpu", "mem0", 400, 6, FlowType::Request);
    add_flow("mem0", "cpu", 400, 8, FlowType::Response);
    add_flow("cpu", "mem1", 200, 8, FlowType::Request);
    add_flow("mem1", "cpu", 200, 8, FlowType::Response);
    add_flow("dsp", "mem2", 500, 6, FlowType::Request);
    add_flow("mem2", "dsp", 500, 8, FlowType::Response);
    add_flow("cpu", "dsp", 150, 10, FlowType::Request);
    add_flow("acc", "mem2", 250, 8, FlowType::Request);
    add_flow("mem2", "acc", 250, 8, FlowType::Response);
    add_flow("dsp", "disp", 300, 8, FlowType::Request);
    add_flow("cpu", "io", 50, 12, FlowType::Request);

    // --- synthesize ---------------------------------------------------------
    SynthesisConfig cfg;
    cfg.eval.freq_hz = 400e6;
    cfg.max_ill = 10;

    Synthesizer synth(spec, cfg);
    const SynthesisResult result = synth.run();
    write_synthesis_report(std::cout, result);

    // --- export the best point ----------------------------------------------
    const int best = result.best_power_index();
    if (best < 0) {
        std::cerr << "no valid design point found\n";
        return 1;
    }
    const DesignPoint& dp = result.points[static_cast<std::size_t>(best)];
    save_topology_dot("quickstart_topology.dot", dp.topo, spec);
    save_layer_svg("quickstart_layer0.svg", dp.topo, spec, 0);
    save_layer_svg("quickstart_layer1.svg", dp.topo, spec, 1);
    std::cout << "wrote quickstart_topology.dot, quickstart_layer{0,1}.svg\n";
    return 0;
}
