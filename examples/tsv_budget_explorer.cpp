// Explore the TSV yield / NoC power tradeoff (the Fig. 1 + Figs. 21/22
// story): sweep the max_ill budget on D_36_4, convert it into TSV counts,
// and report synthesized power, latency and the estimated stack yield at
// each budget.
#include <iostream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/floorplan/annealer.h"
#include "sunfloor/spec/benchmarks.h"
#include "sunfloor/util/csv.h"

using namespace sunfloor;

int main() {
    DesignSpec spec = make_d36(4);
    AnnealOptions fopts;
    fopts.wirelength_weight = 5e-4;
    Rng rng(42);
    floorplan_design_layers(spec.cores, spec.comm, fopts, rng);

    Table t({"max_ill", "tsvs_used", "yield_est", "noc_power_mW",
             "avg_latency_cyc"});
    const TsvModel tsv;
    for (int ill = 8; ill <= 28; ill += 4) {
        SynthesisConfig cfg;
        cfg.max_ill = ill;
        const auto res = Synthesizer(spec, cfg).run(SynthesisPhase::Phase1);
        const int bp = res.best_power_index();
        if (bp < 0) {
            t.add_row({static_cast<long long>(ill), std::string("-"),
                       std::string("-"), std::string("infeasible"),
                       std::string("-")});
            continue;
        }
        const auto& p = res.points[static_cast<std::size_t>(bp)];
        const int tsvs = p.report.total_tsvs;
        t.add_row({static_cast<long long>(ill),
                   static_cast<long long>(tsvs), TsvModel::yield(tsvs),
                   p.report.power.noc_mw(), p.report.avg_latency_cycles});
    }
    t.write_pretty(std::cout);
    std::cout << "\nLoosening the TSV budget buys power and latency until "
                 "~24 links; the yield model shows what that budget costs "
                 "on the manufacturing side.\n";
    return 0;
}
