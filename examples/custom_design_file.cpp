// Drive the tool from a design file — the Section IV input-file workflow.
// With no argument, a sample design file is written and then consumed, so
// the example is runnable out of the box:
//
//   ./custom_design_file [design.txt [max_ill]]
#include <fstream>
#include <iostream>

#include "sunfloor/core/synthesizer.h"
#include "sunfloor/io/dot.h"
#include "sunfloor/io/report.h"
#include "sunfloor/spec/parser.h"
#include "sunfloor/util/strings.h"

using namespace sunfloor;

namespace {

const char* kSampleDesign = R"(# Sample 2-layer SoC: host + accelerator stack.
# core <name> <w_mm> <h_mm> <x_mm> <y_mm> <layer>
core cpu    2.0 2.0  0.0 0.0  0
core l2     1.8 1.8  2.2 0.0  0
core dma    1.0 1.0  0.0 2.2  0
core eth    1.2 1.0  1.2 2.2  0
core mem0   1.8 1.8  0.0 0.0  1
core mem1   1.8 1.8  2.0 0.0  1
core npu    2.0 1.8  0.0 2.0  1
core codec  1.6 1.4  2.2 2.0  1
# flow <src> <dst> <bw_MBps> <max_latency_cycles> <req|rsp>
flow cpu   l2    800 4  req
flow l2    cpu   800 6  rsp
flow cpu   mem0  300 8  req
flow mem0  cpu   300 8  rsp
flow npu   mem1  600 6  req
flow mem1  npu   600 6  rsp
flow npu   mem0  200 8  req
flow mem0  npu   200 8  rsp
flow codec mem1  250 8  req
flow mem1  codec 250 8  rsp
flow dma   mem0  150 10 req
flow mem0  dma   150 10 rsp
flow eth   dma   100 12 req
flow cpu   npu   120 10 req
flow codec eth   80  12 req
)";

}  // namespace

int main(int argc, char** argv) {
    std::string path = argc > 1 ? argv[1] : "sample_design.txt";
    if (argc <= 1) {
        std::ofstream f(path);
        f << kSampleDesign;
        std::cout << "wrote sample design to " << path << "\n";
    }
    const ParseResult parsed = parse_design_file(path);
    if (!parsed.ok) {
        std::cerr << "parse error: " << parsed.error << "\n";
        return 1;
    }
    const DesignSpec& spec = parsed.spec;
    std::cout << "design '" << spec.name << "': " << spec.cores.num_cores()
              << " cores on " << spec.cores.num_layers() << " layers, "
              << spec.comm.num_flows() << " flows\n";

    SynthesisConfig cfg;
    if (argc > 2 && !parse_int(argv[2], cfg.max_ill)) {
        std::cerr << "bad max_ill argument\n";
        return 1;
    }
    const auto res = Synthesizer(spec, cfg).run();
    write_synthesis_report(std::cout, res);
    const int bp = res.best_power_index();
    if (bp < 0) return 1;
    save_topology_dot(spec.name + "_topology.dot",
                      res.points[static_cast<std::size_t>(bp)].topo, spec);
    std::cout << "wrote " << spec.name << "_topology.dot\n";
    return 0;
}
